//! Online-vs-batch equivalence contracts (ISSUE 10): the incremental online
//! layer must be *indistinguishable* from from-scratch recomputation.
//!
//! 1. Rolling DTW over growing observed series == batch `dtw_top_q` /
//!    `dtw_banded`, bitwise, at every growth step.
//! 2. Churn-renormalized pseudo-weights == a fresh inverse-distance fit on
//!    the compacted survivor set, bitwise; churn-aware neighbour queries ==
//!    a fresh ranking of the survivors.
//! 3. One `OnlineTrainer::fine_tune_epoch` from a checkpoint == the batch
//!    trainer resumed from the same checkpoint for one epoch, bitwise in
//!    parameters and loss.

use stsm_core::{
    inverse_distance_weights, masked_inverse_distance_weights, train_stsm_with, DistanceMode,
    DtwContext, OnlineConfig, OnlineTrainer, ProblemInstance, StsmConfig, TrainCheckpoint,
    TrainOptions, TrainedStsm,
};
use stsm_synth::{space_split, SplitAxis};
use stsm_timeseries::{dtw_top_q, RollingNeighbors};

fn tiny_problem(seed: u64) -> ProblemInstance {
    let dataset = stsm_synth::test_support::tiny_dataset("online-eq", seed);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    ProblemInstance::new(dataset, split, DistanceMode::Euclidean)
}

fn tiny_cfg(seed: u64) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 4,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: 8,
        seed,
        ..Default::default()
    }
}

/// Bitwise comparison of two trained models' parameters.
fn params_identical(a: &TrainedStsm, b: &TrainedStsm) -> bool {
    a.store.len() == b.store.len()
        && a.store.iter().zip(b.store.iter()).all(|((_, na, ta), (_, nb, tb))| {
            na == nb
                && ta.data().len() == tb.data().len()
                && ta.data().iter().zip(tb.data()).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

// ---------------------------------------------------------------- rolling

/// Streaming the observed region's scaled series through
/// [`RollingNeighbors`] yields, after every growth step, sparse rows
/// bitwise equal to a from-scratch pruned batch search over the same
/// prefixes.
#[test]
fn rolling_dtw_matches_batch_on_grown_series() {
    let p = tiny_problem(31);
    let rows = p.gather_rows(&p.observed);
    let (n, t_total) = (rows.dim(0), rows.dim(1));
    let series: Vec<Vec<f32>> =
        (0..n.min(12)).map(|i| rows.data()[i * t_total..(i + 1) * t_total].to_vec()).collect();
    let (band, q) = (4usize, 3usize);
    let start = t_total / 2;
    let mut rn = RollingNeighbors::new(band, q);
    for s in &series {
        rn.insert(s[..start].to_vec());
    }
    rn.refresh();
    let mut len = start;
    let step = 7usize;
    while len < t_total {
        let next = (len + step).min(t_total);
        for (id, s) in series.iter().enumerate() {
            rn.append(id, &s[len..next]);
        }
        len = next;
        rn.refresh();
        let prefixes: Vec<Vec<f32>> = series.iter().map(|s| s[..len].to_vec()).collect();
        let (want, _) = dtw_top_q(&prefixes, band, q);
        let (ids, got) = rn.to_sparse();
        assert_eq!(ids, (0..series.len() as u32).collect::<Vec<_>>());
        assert_eq!(got, want, "rolling rows diverged from batch at length {len}");
    }
}

// ------------------------------------------------------------------ churn

/// Masked re-normalization over the full source layout is bitwise a fresh
/// inverse-distance fit on the compacted survivor set.
#[test]
fn churn_weights_match_fresh_fit_on_survivors() {
    let p = tiny_problem(32);
    let targets: Vec<usize> = p.unobserved.iter().copied().take(6).collect();
    let sources = p.observed.clone();
    let ns = sources.len();
    // Kill every third source (deterministic churn pattern).
    let alive: Vec<bool> = (0..ns).map(|j| j % 3 != 2).collect();
    let survivors: Vec<usize> = (0..ns).filter(|&j| alive[j]).map(|j| sources[j]).collect();
    assert!(!survivors.is_empty() && survivors.len() < ns);

    let dist_full = p.sub_distances(&targets, &sources, true);
    let masked = masked_inverse_distance_weights(&dist_full, targets.len(), ns, &alive);

    let dist_surv = p.sub_distances(&targets, &survivors, true);
    let fresh = inverse_distance_weights(&dist_surv, targets.len(), survivors.len());

    for ti in 0..targets.len() {
        let mut sj = 0usize;
        for j in 0..ns {
            let m = masked[ti * ns + j];
            if alive[j] {
                let f = fresh[ti * survivors.len() + sj];
                assert_eq!(
                    m.to_bits(),
                    f.to_bits(),
                    "weight for target {ti}, surviving source {j} diverged"
                );
                sj += 1;
            } else {
                assert_eq!(m.to_bits(), 0.0f32.to_bits(), "dead source {j} must get weight 0");
            }
        }
    }
}

/// Churn-aware neighbour queries through the sparse rows (with fallback
/// rescan) equal a brute-force re-ranking of the survivors by the same
/// kernel, for every node and several churn patterns.
#[test]
fn surviving_links_match_fresh_ranking() {
    let p = tiny_problem(33);
    let cfg = tiny_cfg(33);
    let ctx = DtwContext::with_options(
        &p,
        cfg.dtw_band,
        cfg.dtw_downsample,
        cfg.dtw_candidates,
        cfg.q_kk.max(cfg.q_ku),
    );
    let n = ctx.n_observed();
    for (pat, alive) in [
        (0usize, (0..n).map(|j| j % 2 == 0).collect::<Vec<bool>>()),
        (1, (0..n).map(|j| j % 4 != 3).collect()),
        (2, vec![true; n]),
    ] {
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let count = cfg.q_kk;
            let got = ctx.surviving_links(i, count, &alive);
            // Brute force: every surviving candidate through the same
            // kernel, sorted by (distance, index).
            let mut all: Vec<(f32, u32)> = (0..n)
                .filter(|&j| j != i && alive[j])
                .map(|j| (ctx.distance(i, j), j as u32))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let want: Vec<u32> = all.into_iter().take(count).map(|(_, j)| j).collect();
            assert_eq!(got, want, "pattern {pat}, node {i}: survivor ranking diverged");
        }
    }
}

// -------------------------------------------------------------- fine-tune

/// Resuming a checkpoint through `OnlineTrainer` and running one
/// fine-tune epoch with a full replay horizon is bitwise the batch
/// trainer's resumed epoch: same parameters, same loss.
#[test]
fn fine_tune_from_checkpoint_is_bitwise_batch_resume() {
    let p = tiny_problem(34);
    let cfg = tiny_cfg(34);
    let dir = std::env::temp_dir().join("stsm_online_eq");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("warm.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Train 2 of 4 epochs, snapshotting the boundary.
    let mut two = TrainOptions::checkpoint_to(&ckpt);
    two.stop_after_epoch = Some(2);
    train_stsm_with(&p, &cfg, &two).expect("partial run trains");

    // Load the 2-epoch snapshot *before* the batch resume run below
    // re-checkpoints over the same path.
    let ck = TrainCheckpoint::load(&ckpt).expect("checkpoint loads");
    assert_eq!(ck.epochs_done, 2);

    // Batch resume: run exactly epoch 2.
    let mut three = TrainOptions::resume_from(&ckpt);
    three.stop_after_epoch = Some(3);
    let (batch, batch_report) = train_stsm_with(&p, &cfg, &three).expect("resumes");
    assert_eq!(batch_report.resilience.resumed_from_epoch, Some(2));
    assert_eq!(batch_report.epoch_losses.len(), 3);

    // Online resume: same checkpoint, full replay horizon, neutral lr scale.
    let online_cfg = OnlineConfig { replay_windows: usize::MAX, lr_scale: 1.0, refresh_every: 1 };
    let mut online =
        OnlineTrainer::from_checkpoint(&p, &cfg, online_cfg, &ck).expect("online resume");
    assert_eq!(online.epochs_done(), 2);
    let loss = online.fine_tune_epoch(&p, p.train_time.end).expect("fine-tunes");
    assert_eq!(online.epochs_done(), 3);

    assert_eq!(
        loss.to_bits(),
        batch_report.epoch_losses[2].to_bits(),
        "online epoch loss must equal the batch-resumed epoch loss"
    );
    let snapshot = online.trained().expect("snapshot");
    assert!(
        params_identical(&batch, &snapshot),
        "one fine-tune epoch must land on the batch trajectory bit-for-bit"
    );

    // The exported checkpoint continues the same numbering.
    let ck2 = online.checkpoint();
    assert_eq!(ck2.epochs_done, 3);
    assert_eq!(ck2.epoch_losses.last().map(|l| l.to_bits()), Some(loss.to_bits()));

    // A mismatched config is rejected, not silently adapted.
    let other = tiny_cfg(35);
    assert!(OnlineTrainer::from_checkpoint(&p, &other, OnlineConfig::default(), &ck).is_err());
}

/// Bounded replay restricts the window pool: with a tiny horizon the
/// fine-tune epoch still runs, stays finite and advances the epoch counter
/// (graceful degradation, not equivalence).
#[test]
fn bounded_replay_fine_tune_stays_finite() {
    let p = tiny_problem(36);
    let cfg = tiny_cfg(36);
    let (trained, _) = train_stsm_with(&p, &cfg, &TrainOptions::default()).expect("trains");
    let online_cfg = OnlineConfig { replay_windows: 4, lr_scale: 0.5, refresh_every: 2 };
    let mut online = OnlineTrainer::from_trained(&p, &trained, online_cfg).expect("wraps");
    let before = online.epochs_done();
    for k in 0..2 {
        let loss = online.fine_tune_epoch(&p, p.train_time.end).expect("fine-tunes");
        assert!(loss.is_finite(), "replay-bounded epoch {k} produced non-finite loss");
    }
    assert_eq!(online.epochs_done(), before + 2);
    let snap = online.trained().expect("snapshot");
    assert!(snap.store.iter().all(|(_, _, t)| t.data().iter().all(|v| v.is_finite())));
}
