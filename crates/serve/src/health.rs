//! Per-sensor circuit breakers over the ingest stream.

use stsm_tensor::telemetry;

/// Tracks per-sensor health from the ingest stream and opens a circuit
/// breaker after a sensor has been dark (non-finite) for `trip_steps`
/// consecutive steps.
///
/// While a breaker is open the sensor is treated as absent: `Latest`
/// snapshots mask its row to NaN so the checked prediction path imputes it
/// from its neighbors — even if the sensor has started emitting again. Only
/// after `close_steps` consecutive finite readings does the breaker close
/// and the sensor's values flow through untouched. This quarantines the
/// garbage many sensors emit right after an outage (spikes, stuck values)
/// behind the same deterministic imputation used for in-window dropouts.
pub struct HealthTracker {
    trip_steps: usize,
    close_steps: usize,
    bad_streak: Vec<usize>,
    good_streak: Vec<usize>,
    open: Vec<bool>,
    trips: u64,
    closes: u64,
}

impl HealthTracker {
    /// A tracker for `n_sensors` sensors, tripping after `trip_steps`
    /// consecutive non-finite readings and closing after `close_steps`
    /// consecutive finite ones. Both thresholds are clamped to at least 1.
    pub fn new(n_sensors: usize, trip_steps: usize, close_steps: usize) -> Self {
        HealthTracker {
            trip_steps: trip_steps.max(1),
            close_steps: close_steps.max(1),
            bad_streak: vec![0; n_sensors],
            good_streak: vec![0; n_sensors],
            open: vec![false; n_sensors],
            trips: 0,
            closes: 0,
        }
    }

    /// Feeds one ingest step (one reading per sensor, sensor-major in
    /// observed order) and updates breaker states.
    pub fn observe_step(&mut self, readings: &[f32]) {
        debug_assert_eq!(readings.len(), self.open.len());
        for (s, v) in readings.iter().enumerate() {
            if v.is_finite() {
                self.good_streak[s] += 1;
                self.bad_streak[s] = 0;
                if self.open[s] && self.good_streak[s] >= self.close_steps {
                    self.open[s] = false;
                    self.closes += 1;
                    telemetry::count("serve.breaker.close", 1);
                }
            } else {
                self.bad_streak[s] += 1;
                self.good_streak[s] = 0;
                if !self.open[s] && self.bad_streak[s] >= self.trip_steps {
                    self.open[s] = true;
                    self.trips += 1;
                    telemetry::count("serve.breaker.trip", 1);
                }
            }
        }
    }

    /// Whether sensor `s`'s breaker is currently open.
    pub fn is_open(&self, s: usize) -> bool {
        self.open[s]
    }

    /// Number of currently open breakers.
    pub fn open_count(&self) -> usize {
        self.open.iter().filter(|o| **o).count()
    }

    /// Masks the rows of open-breaker sensors in a gathered source window
    /// (`n_sensors × len`, sensor-major) to NaN, routing them through the
    /// imputation path. Returns how many sensors were masked.
    pub fn mask_sources(&self, sources: &mut [f32], len: usize) -> usize {
        let mut masked = 0;
        for (s, open) in self.open.iter().enumerate() {
            if *open {
                sources[s * len..(s + 1) * len].fill(f32::NAN);
                masked += 1;
            }
        }
        masked
    }

    /// Lifetime (trips, closes) counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.trips, self.closes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_streak_and_closes_after_recovery() {
        let mut h = HealthTracker::new(2, 3, 2);
        // Sensor 0 goes dark, sensor 1 stays healthy.
        for _ in 0..2 {
            h.observe_step(&[f32::NAN, 1.0]);
            assert!(!h.is_open(0), "below trip threshold");
        }
        h.observe_step(&[f32::NAN, 1.0]);
        assert!(h.is_open(0));
        assert!(!h.is_open(1));
        // One finite step is not enough to close (close_steps = 2)...
        h.observe_step(&[5.0, 1.0]);
        assert!(h.is_open(0));
        // ...two are.
        h.observe_step(&[5.0, 1.0]);
        assert!(!h.is_open(0));
        assert_eq!(h.totals(), (1, 1));
    }

    #[test]
    fn interrupted_streak_does_not_trip() {
        let mut h = HealthTracker::new(1, 3, 1);
        h.observe_step(&[f32::NAN]);
        h.observe_step(&[f32::NAN]);
        h.observe_step(&[0.5]); // streak broken
        h.observe_step(&[f32::NAN]);
        h.observe_step(&[f32::NAN]);
        assert!(!h.is_open(0));
        assert_eq!(h.open_count(), 0);
    }

    #[test]
    fn mask_fills_open_rows_only() {
        let mut h = HealthTracker::new(2, 1, 1);
        h.observe_step(&[f32::NAN, 1.0]);
        let mut sources = vec![1.0f32; 6]; // 2 sensors x 3 steps
        let masked = h.mask_sources(&mut sources, 3);
        assert_eq!(masked, 1);
        assert!(sources[..3].iter().all(|v| v.is_nan()));
        assert!(sources[3..].iter().all(|v| *v == 1.0));
    }
}
