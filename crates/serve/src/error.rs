//! Typed rejections of the forecast service.
//!
//! Every submitted request terminates in exactly one of two ways: a
//! [`ForecastResponse`](crate::ForecastResponse) or one of these errors.
//! There is no third state — the chaos suite counts both sides and asserts
//! they sum to the number of submissions.

use std::fmt;
use std::time::Duration;

/// Why the service declined (or failed) to produce a forecast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full and watermark shedding freed no slot.
    /// Backpressure: the caller should retry later or slow down.
    Overloaded {
        /// Queue depth observed at rejection (== configured capacity).
        depth: usize,
    },
    /// The request's deadline budget expired before a worker reached it.
    /// Shed at queue-pop — no compute is spent on a forecast nobody can use.
    DeadlineExceeded {
        /// How far past the deadline the request was when shed.
        late_by: Duration,
    },
    /// The server is draining: no new work is admitted, in-flight requests
    /// still complete.
    ShuttingDown,
    /// A `Latest` forecast was requested before the ingest ring held a full
    /// input window.
    ColdStart {
        /// Steps ingested so far.
        have: usize,
        /// Steps a window needs (`t_in`).
        need: usize,
    },
    /// The worker executing this request panicked. The panic was contained
    /// (the worker respawned and the pool kept serving); only this request
    /// is affected.
    WorkerPanicked,
    /// A hot-swap offered a model whose config fingerprint differs from the
    /// serving one. The serving assets (adjacencies, pseudo-weights, window
    /// geometry) are functions of the config, so such a model can never be
    /// bound safely; the swap is rejected atomically and the old model keeps
    /// serving.
    FingerprintMismatch {
        /// Fingerprint of the live model's config.
        serving: u64,
        /// Fingerprint of the rejected candidate's config.
        offered: u64,
    },
    /// The request was malformed (e.g. a window start outside the dataset)
    /// or was a chaos hook that produces no forecast by design.
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: queue full at depth {depth}")
            }
            ServeError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded ({late_by:?} late at shed)")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::ColdStart { have, need } => {
                write!(f, "cold start: {have}/{need} steps ingested")
            }
            ServeError::WorkerPanicked => write!(f, "worker panicked while serving this request"),
            ServeError::FingerprintMismatch { serving, offered } => write!(
                f,
                "config fingerprint mismatch: serving {serving:#018x}, offered {offered:#018x}"
            ),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
