//! Streaming ingestion: per-sensor ring buffers of recent readings.

/// A fixed-capacity ring of the most recent readings per observed sensor,
/// fed one step at a time by [`Server::ingest_step`](crate::Server::ingest_step).
///
/// `snapshot_window` materializes the latest `t_in` steps as the
/// observed-major `N_o × t_in` source matrix the checked prediction path
/// consumes. Values are stored verbatim — including NaN from faulted
/// sensors; sanitization happens downstream so the ring never has to decide
/// what a reading "should" have been.
pub struct IngestRing {
    n_sensors: usize,
    capacity: usize,
    /// Sensor-major ring storage, `n_sensors × capacity`.
    data: Vec<f32>,
    /// Total steps ever ingested; `steps % capacity` is the next write slot.
    steps: usize,
}

impl IngestRing {
    /// A ring holding `capacity` steps (at least the model's `t_in`) for
    /// `n_sensors` sensors.
    pub fn new(n_sensors: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        IngestRing { n_sensors, capacity, data: vec![f32::NAN; n_sensors * capacity], steps: 0 }
    }

    /// Appends one step of readings (one per sensor, observed order).
    ///
    /// # Panics
    /// If `readings.len() != n_sensors`.
    pub fn push_step(&mut self, readings: &[f32]) {
        assert_eq!(readings.len(), self.n_sensors, "one reading per observed sensor");
        let slot = self.steps % self.capacity;
        for (s, &v) in readings.iter().enumerate() {
            self.data[s * self.capacity + slot] = v;
        }
        self.steps += 1;
    }

    /// Total steps ingested so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The last `len` steps as an observed-major `n_sensors × len` matrix,
    /// plus the absolute index of the window's first step (for time
    /// features). `None` until `len` steps have been ingested.
    pub fn snapshot_window(&self, len: usize) -> Option<(Vec<f32>, usize)> {
        if len == 0 || len > self.capacity || self.steps < len {
            return None;
        }
        let start = self.steps - len;
        let mut out = vec![0.0f32; self.n_sensors * len];
        for s in 0..self.n_sensors {
            let row = &self.data[s * self.capacity..(s + 1) * self.capacity];
            for (t, o) in out[s * len..(s + 1) * len].iter_mut().enumerate() {
                *o = row[(start + t) % self.capacity];
            }
        }
        Some((out, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_requires_full_window() {
        let mut ring = IngestRing::new(2, 4);
        assert!(ring.snapshot_window(3).is_none());
        ring.push_step(&[1.0, 10.0]);
        ring.push_step(&[2.0, 20.0]);
        assert!(ring.snapshot_window(3).is_none());
        ring.push_step(&[3.0, 30.0]);
        let (w, start) = ring.snapshot_window(3).expect("full window");
        assert_eq!(start, 0);
        assert_eq!(w, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn ring_wraps_and_keeps_latest() {
        let mut ring = IngestRing::new(1, 3);
        for t in 0..7 {
            ring.push_step(&[t as f32]);
        }
        let (w, start) = ring.snapshot_window(3).expect("full window");
        assert_eq!(start, 4);
        assert_eq!(w, vec![4.0, 5.0, 6.0]);
        assert_eq!(ring.steps(), 7);
    }

    #[test]
    fn nan_readings_are_stored_verbatim() {
        let mut ring = IngestRing::new(1, 2);
        ring.push_step(&[f32::NAN]);
        ring.push_step(&[1.0]);
        let (w, _) = ring.snapshot_window(2).expect("full window");
        assert!(w[0].is_nan());
        assert_eq!(w[1], 1.0);
    }
}
