//! The forecast server: bounded admission, a thread-per-worker predictor
//! pool, deadline budgets, panic containment, and epoch-style model
//! hot-swap.
//!
//! ## Threading model
//!
//! `InferSession` arenas are deliberately thread-pinned (`!Send`), so the
//! pool is thread-per-worker: each worker thread builds its *own*
//! [`Predictor`] inside the thread from the shared model `Arc` and the
//! once-built [`InferAssets`], and serves requests from a shared bounded
//! queue (std `Mutex` + `Condvar`; the service deliberately uses only std
//! primitives). Requests resolve to a response through a 1-slot rendezvous
//! channel held by the caller's [`Pending`] handle.
//!
//! ## Lifecycle of a request
//!
//! 1. **Admission** ([`Server::submit`]): `Latest` requests snapshot the
//!    ingest ring *now* (so the forecast reflects the data at submit time)
//!    and apply circuit-breaker masking; requests are stamped with their
//!    deadline. A closed server rejects with `ShuttingDown`; a full queue —
//!    after watermark shedding of already-expired entries — rejects with
//!    `Overloaded`.
//! 2. **Queue-pop** (worker): a request whose deadline has already passed is
//!    shed *before* any compute is spent on it (`DeadlineExceeded`).
//! 3. **Execution**: the worker checks the swap generation, rebinding its
//!    predictor if a hot-swap happened since its last request, then runs the
//!    checked prediction path. A panic during execution is contained by
//!    `catch_unwind`: the caller gets `WorkerPanicked`, the worker rebuilds
//!    its predictor (the arena may be mid-state) and keeps serving.
//! 4. **Response**: exactly one of [`ForecastResponse`] or
//!    [`ServeError`] per accepted request — the chaos suite counts both
//!    sides and asserts nothing is ever silently dropped.
//!
//! ## Hot-swap protocol
//!
//! [`Server::swap_model`] installs a new [`SharedModel`] only if its config
//! fingerprint equals the serving one (the [`InferAssets`] are functions of
//! the config, so a fingerprint match makes the cached assets valid for the
//! new weights). The swap is epoch-style: a generation counter bumps
//! atomically; workers notice at their next queue-pop and rebind. In-flight
//! requests finish on whichever model they started with — none are dropped.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::health::HealthTracker;
use crate::ingest::IngestRing;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stsm_core::{DataQuality, InferAssets, OnlineTrainer, Predictor, ProblemInstance, SharedModel};
use stsm_tensor::{telemetry, Tensor};

/// What to forecast.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Forecast the test window starting at this absolute step of the
    /// problem's dataset (the batch-evaluation shape).
    Window {
        /// First step of the input window.
        abs_start: usize,
    },
    /// Forecast from the most recent `t_in` ingested steps. Snapshot is
    /// taken at submit time; open circuit breakers mask their sensors out.
    Latest,
    /// Chaos hook: the executing worker panics. Used by the chaos suite to
    /// prove panic containment; never produces a forecast.
    ChaosPanic,
    /// Chaos hook: the executing worker sleeps this long, occupying a pool
    /// slot (the suite uses it to force queue overflow deterministically),
    /// then answers `BadRequest`.
    ChaosStall(Duration),
}

/// A forecast request: what to predict plus an optional deadline budget.
#[derive(Debug, Clone)]
pub struct ForecastRequest {
    /// What to forecast.
    pub kind: RequestKind,
    /// Deadline budget measured from submission; `None` falls back to
    /// [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl ForecastRequest {
    /// A dataset-window request.
    pub fn window(abs_start: usize) -> Self {
        ForecastRequest { kind: RequestKind::Window { abs_start }, deadline: None }
    }

    /// A latest-ingested-data request.
    pub fn latest() -> Self {
        ForecastRequest { kind: RequestKind::Latest, deadline: None }
    }

    /// Sets an explicit deadline budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// A chaos hook that panics the executing worker.
    pub fn chaos_panic() -> Self {
        ForecastRequest { kind: RequestKind::ChaosPanic, deadline: None }
    }

    /// A chaos hook that stalls the executing worker for `d`.
    pub fn chaos_stall(d: Duration) -> Self {
        ForecastRequest { kind: RequestKind::ChaosStall(d), deadline: None }
    }
}

/// A completed forecast.
#[derive(Debug, Clone)]
pub struct ForecastResponse {
    /// Scaled predictions, `(N, T', 1)` — the same tensor
    /// [`Predictor::predict_window_checked`] returns.
    pub prediction: Tensor,
    /// What the sanitizer imputed (blend / carry / unrecoverable counts).
    pub quality: DataQuality,
    /// Sensors masked out of this request by open circuit breakers
    /// (`Latest` requests only; masked rows surface in `quality` as
    /// imputed).
    pub breaker_masked: usize,
    /// Swap generation of the model that served this request.
    pub generation: u64,
    /// Time spent queued before a worker picked the request up.
    pub queued: Duration,
    /// Time spent in the predictor.
    pub compute: Duration,
}

/// Always-on service counters (independent of the `STSM_TELEMETRY` gate, so
/// the chaos suite's accounting works in any configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests answered with a forecast.
    pub completed: u64,
    /// Requests answered `DeadlineExceeded` (shed at pop or by watermark).
    pub deadline_exceeded: u64,
    /// Submissions rejected `Overloaded`.
    pub overloaded: u64,
    /// Submissions rejected `ShuttingDown`.
    pub shutdown_rejected: u64,
    /// Submissions rejected `ColdStart`.
    pub cold_start: u64,
    /// Requests answered `BadRequest` (at submit or, for chaos stalls, at
    /// execution).
    pub bad_request: u64,
    /// Requests answered `WorkerPanicked`.
    pub worker_panics: u64,
    /// Predictor rebuilds after a contained panic.
    pub worker_respawns: u64,
    /// Successful hot-swaps.
    pub swaps: u64,
    /// Hot-swaps rejected for a fingerprint mismatch.
    pub swaps_rejected: u64,
    /// Steps fed through [`Server::ingest_step`].
    pub ingested_steps: u64,
    /// Circuit breakers tripped open.
    pub breaker_trips: u64,
    /// Circuit breakers closed again.
    pub breaker_closes: u64,
    /// Current swap generation (0 until the first swap).
    pub generation: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    overloaded: AtomicU64,
    shutdown_rejected: AtomicU64,
    cold_start: AtomicU64,
    bad_request: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    swaps: AtomicU64,
    swaps_rejected: AtomicU64,
    ingested_steps: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Caller-side handle to an in-flight request.
pub struct Pending {
    rx: Receiver<Result<ForecastResponse, ServeError>>,
}

impl Pending {
    /// Blocks until the request terminates. A severed channel (possible
    /// only if the serving thread died un-respawnably) maps to
    /// [`ServeError::WorkerPanicked`] — the caller always gets a typed
    /// answer.
    pub fn wait(self) -> Result<ForecastResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerPanicked))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<ForecastResponse, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// A queued unit of work, with the `Latest` snapshot already resolved.
enum JobKind {
    Window { abs_start: usize },
    Sources { sources: Vec<f32>, abs_start: usize, breaker_masked: usize },
    ChaosPanic,
    ChaosStall(Duration),
}

struct Job {
    kind: JobKind,
    enqueued: Instant,
    deadline: Option<Instant>,
    tx: SyncSender<Result<ForecastResponse, ServeError>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// One installed model epoch. Workers hold an `Arc` to the slot they bound
/// and compare generations to detect swaps.
struct ModelSlot {
    model: SharedModel,
    generation: u64,
    fingerprint: u64,
}

struct IngestState {
    ring: IngestRing,
    health: HealthTracker,
}

struct Inner {
    cfg: ServeConfig,
    problem: Arc<ProblemInstance>,
    assets: InferAssets,
    t_in: usize,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    model: Mutex<Arc<ModelSlot>>,
    generation: AtomicU64,
    ingest: Mutex<IngestState>,
    counters: Counters,
}

/// Locks a mutex, recovering the guard if a past panic poisoned it — the
/// state protected here (queue, slot pointer, ring) stays consistent across
/// the panics the chaos suite injects, which all happen outside these locks.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running forecast service. See the module docs for the architecture.
///
/// Dropping a `Server` drains and joins the pool ([`Server::shutdown`] does
/// the same but returns the final [`ServeStats`]).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the serving assets once (the expensive DTW search), then
    /// spawns `cfg.workers` worker threads, each binding its own predictor
    /// to `model`.
    pub fn start(problem: Arc<ProblemInstance>, model: SharedModel, cfg: ServeConfig) -> Server {
        let cfg = cfg.normalized();
        let assets = InferAssets::new(model.cfg(), &problem);
        let t_in = model.cfg().t_in;
        let n_obs = problem.observed.len();
        let fingerprint = model.fingerprint();
        let inner = Arc::new(Inner {
            t_in,
            assets,
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            model: Mutex::new(Arc::new(ModelSlot { model, generation: 0, fingerprint })),
            generation: AtomicU64::new(0),
            ingest: Mutex::new(IngestState {
                ring: IngestRing::new(n_obs, t_in.max(1)),
                health: HealthTracker::new(
                    n_obs,
                    cfg.breaker_trip_windows.saturating_mul(t_in),
                    cfg.breaker_close_windows.saturating_mul(t_in),
                ),
            }),
            counters: Counters::default(),
            problem,
            cfg,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("stsm-serve-{i}"))
                    .spawn(move || worker_main(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Feeds one step of live readings (one per observed sensor, in
    /// `problem.observed` order, in the problem's *scaled* units; NaN for
    /// sensors that produced nothing). Updates the ring buffer and the
    /// circuit breakers.
    pub fn ingest_step(&self, readings: &[f32]) {
        let mut ing = lock_recover(&self.inner.ingest);
        ing.health.observe_step(readings);
        ing.ring.push_step(readings);
        self.inner.counters.bump(&self.inner.counters.ingested_steps);
    }

    /// Submits a request. `Ok` returns a [`Pending`] handle that will
    /// resolve to a forecast or a typed error; `Err` is an immediate typed
    /// rejection (admission control never blocks the caller).
    pub fn submit(&self, req: ForecastRequest) -> Result<Pending, ServeError> {
        let c = &self.inner.counters;
        let kind = match req.kind {
            RequestKind::Window { abs_start } => {
                let t_total = self.inner.problem.dataset.t_total;
                if abs_start + self.inner.t_in > t_total {
                    c.bump(&c.bad_request);
                    return Err(ServeError::BadRequest(format!(
                        "window start {abs_start} + t_in {} exceeds dataset length {t_total}",
                        self.inner.t_in
                    )));
                }
                JobKind::Window { abs_start }
            }
            RequestKind::Latest => {
                let ing = lock_recover(&self.inner.ingest);
                match ing.ring.snapshot_window(self.inner.t_in) {
                    None => {
                        c.bump(&c.cold_start);
                        return Err(ServeError::ColdStart {
                            have: ing.ring.steps(),
                            need: self.inner.t_in,
                        });
                    }
                    Some((mut sources, abs_start)) => {
                        let breaker_masked = ing.health.mask_sources(&mut sources, self.inner.t_in);
                        JobKind::Sources { sources, abs_start, breaker_masked }
                    }
                }
            }
            RequestKind::ChaosPanic => JobKind::ChaosPanic,
            RequestKind::ChaosStall(d) => JobKind::ChaosStall(d),
        };
        let now = Instant::now();
        let deadline = req.deadline.or(self.inner.cfg.default_deadline).map(|budget| now + budget);
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let job = Job { kind, enqueued: now, deadline, tx };

        let mut q = lock_recover(&self.inner.queue);
        if q.closed {
            c.bump(&c.shutdown_rejected);
            return Err(ServeError::ShuttingDown);
        }
        if q.jobs.len() >= self.inner.cfg.shed_watermark {
            // Load-shed: answer every already-expired queued request now so
            // remaining capacity goes to requests that can still make it.
            q.jobs.retain(|j| match j.deadline {
                Some(dl) if now > dl => {
                    let _ = j.tx.send(Err(ServeError::DeadlineExceeded { late_by: now - dl }));
                    c.bump(&c.deadline_exceeded);
                    telemetry::count("serve.deadline_exceeded", 1);
                    false
                }
                _ => true,
            });
        }
        if q.jobs.len() >= self.inner.cfg.queue_depth {
            c.bump(&c.overloaded);
            telemetry::count("serve.overloaded", 1);
            return Err(ServeError::Overloaded { depth: q.jobs.len() });
        }
        q.jobs.push_back(job);
        c.bump(&c.accepted);
        telemetry::record_value("serve.queue_depth", q.jobs.len() as u64);
        drop(q);
        self.inner.not_empty.notify_one();
        Ok(Pending { rx })
    }

    /// Atomically replaces the serving model with `model`, provided its
    /// config fingerprint matches the serving one (see the module docs for
    /// why this is required, not advisory). Returns the new swap generation.
    /// In-flight and queued requests are never dropped; workers rebind at
    /// their next queue-pop.
    pub fn swap_model(&self, model: SharedModel) -> Result<u64, ServeError> {
        let offered = model.fingerprint();
        let mut slot = lock_recover(&self.inner.model);
        if slot.fingerprint != offered {
            self.inner.counters.bump(&self.inner.counters.swaps_rejected);
            return Err(ServeError::FingerprintMismatch { serving: slot.fingerprint, offered });
        }
        let generation = slot.generation + 1;
        *slot = Arc::new(ModelSlot { model, generation, fingerprint: offered });
        self.inner.generation.store(generation, Ordering::Release);
        self.inner.counters.bump(&self.inner.counters.swaps);
        telemetry::count("serve.swap", 1);
        Ok(generation)
    }

    /// Online-adaptation refresh hook: snapshots an [`OnlineTrainer`]'s
    /// current weights and hot-swaps them in through the same
    /// fingerprint-gated [`Server::swap_model`] path (the trainer shares
    /// the serving config, so the cached [`InferAssets`] stay valid).
    /// Returns the new swap generation.
    pub fn swap_refreshed(&self, trainer: &OnlineTrainer) -> Result<u64, ServeError> {
        let trained = trainer
            .trained()
            .map_err(|e| ServeError::BadRequest(format!("online snapshot failed: {e}")))?;
        self.swap_model(SharedModel::F32(Arc::new(trained)))
    }

    /// Current always-on counters. Callable at any time; for the exact
    /// final numbers use the snapshot [`Server::shutdown`] returns.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        let (breaker_trips, breaker_closes) = lock_recover(&self.inner.ingest).health.totals();
        ServeStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            overloaded: c.overloaded.load(Ordering::Relaxed),
            shutdown_rejected: c.shutdown_rejected.load(Ordering::Relaxed),
            cold_start: c.cold_start.load(Ordering::Relaxed),
            bad_request: c.bad_request.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            swaps: c.swaps.load(Ordering::Relaxed),
            swaps_rejected: c.swaps_rejected.load(Ordering::Relaxed),
            ingested_steps: c.ingested_steps.load(Ordering::Relaxed),
            breaker_trips,
            breaker_closes,
            generation: self.inner.generation.load(Ordering::Acquire),
        }
    }

    /// Requests currently queued (not counting those being executed).
    pub fn queue_len(&self) -> usize {
        lock_recover(&self.inner.queue).jobs.len()
    }

    /// Stops admission immediately — subsequent submits are rejected with
    /// [`ServeError::ShuttingDown`] — while the pool keeps draining what is
    /// already queued. [`Server::shutdown`] (or drop) still joins the pool.
    pub fn begin_drain(&self) {
        lock_recover(&self.inner.queue).closed = true;
        self.inner.not_empty.notify_all();
    }

    /// Graceful drain: stops admitting, serves everything already queued,
    /// joins the pool, and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        lock_recover(&self.inner.queue).closed = true;
        self.inner.not_empty.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Outer worker loop: respawns the serving loop (with a fresh predictor) if
/// it ever unwinds outside the per-job containment. Exits only on drain.
fn worker_main(inner: &Arc<Inner>) {
    loop {
        let done = catch_unwind(AssertUnwindSafe(|| serve_loop(inner)));
        match done {
            Ok(()) => return,
            Err(_) => {
                inner.counters.bump(&inner.counters.worker_respawns);
                telemetry::count("serve.worker.respawn", 1);
            }
        }
    }
}

/// Pops one job, or `None` once the queue is closed *and* drained.
fn pop_job(inner: &Inner) -> Option<Job> {
    let mut q = lock_recover(&inner.queue);
    loop {
        if let Some(job) = q.jobs.pop_front() {
            return Some(job);
        }
        if q.closed {
            return None;
        }
        q = inner.not_empty.wait(q).unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

fn serve_loop(inner: &Arc<Inner>) {
    let mut slot = lock_recover(&inner.model).clone();
    let mut predictor = Predictor::new_shared_with_assets(slot.model.clone(), &inner.assets);
    while let Some(job) = pop_job(inner) {
        let picked_up = Instant::now();
        if let Some(dl) = job.deadline {
            if picked_up > dl {
                // Shed before spending compute on a forecast nobody can use.
                let _ = job.tx.send(Err(ServeError::DeadlineExceeded { late_by: picked_up - dl }));
                inner.counters.bump(&inner.counters.deadline_exceeded);
                telemetry::count("serve.deadline_exceeded", 1);
                continue;
            }
        }
        let current = inner.generation.load(Ordering::Acquire);
        if current != slot.generation {
            slot = lock_recover(&inner.model).clone();
            predictor = Predictor::new_shared_with_assets(slot.model.clone(), &inner.assets);
            telemetry::count("serve.swap.rebind", 1);
        }
        let queued = picked_up - job.enqueued;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&mut predictor, inner, job.kind)));
        match outcome {
            Ok(Ok((prediction, quality, breaker_masked))) => {
                let compute = picked_up.elapsed();
                inner.counters.bump(&inner.counters.completed);
                telemetry::record_duration("serve.request", job.enqueued.elapsed());
                let _ = job.tx.send(Ok(ForecastResponse {
                    prediction,
                    quality,
                    breaker_masked,
                    generation: slot.generation,
                    queued,
                    compute,
                }));
            }
            Ok(Err(e)) => {
                if matches!(e, ServeError::BadRequest(_)) {
                    inner.counters.bump(&inner.counters.bad_request);
                }
                let _ = job.tx.send(Err(e));
            }
            Err(_) => {
                // Contained: answer this caller, rebuild the (possibly
                // mid-state) predictor, keep serving everyone else.
                inner.counters.bump(&inner.counters.worker_panics);
                telemetry::count("serve.worker.panic", 1);
                let _ = job.tx.send(Err(ServeError::WorkerPanicked));
                predictor = Predictor::new_shared_with_assets(slot.model.clone(), &inner.assets);
                inner.counters.bump(&inner.counters.worker_respawns);
                telemetry::count("serve.worker.respawn", 1);
            }
        }
    }
}

type JobOutput = Result<(Tensor, DataQuality, usize), ServeError>;

fn run_job(predictor: &mut Predictor<'static>, inner: &Inner, kind: JobKind) -> JobOutput {
    match kind {
        JobKind::Window { abs_start } => {
            let (prediction, quality) = predictor.predict_window_checked(&inner.problem, abs_start);
            Ok((prediction, quality, 0))
        }
        JobKind::Sources { mut sources, abs_start, breaker_masked } => {
            let (prediction, quality) =
                predictor.predict_sources_checked(&inner.problem, &mut sources, abs_start);
            Ok((prediction, quality, breaker_masked))
        }
        JobKind::ChaosPanic => panic!("chaos: worker panic requested"),
        JobKind::ChaosStall(d) => {
            std::thread::sleep(d);
            Err(ServeError::BadRequest("chaos stall produces no forecast".into()))
        }
    }
}
