//! # stsm-serve
//!
//! A resilient, concurrent forecast service over the STSM [`Predictor`]
//! pool — the serving milestone of the reproduction roadmap. The paper's
//! model forecasts regions without observations; this crate keeps that
//! forecast available when the *observed* side degrades too: sensors go
//! dark, inputs turn to NaN, load spikes past capacity, the model is
//! upgraded under traffic, or a worker panics outright.
//!
//! The contract, enforced by the `serve_chaos` suite:
//!
//! * **Every request terminates** — a [`ForecastResponse`] or a typed
//!   [`ServeError`]; nothing is silently dropped, under any injected fault.
//! * **Bounded admission** — a full queue rejects with
//!   [`ServeError::Overloaded`] (backpressure), after watermark shedding of
//!   requests whose deadline already expired.
//! * **Deadline budgets** — expired requests are shed at queue-pop, before
//!   compute is spent on them ([`ServeError::DeadlineExceeded`]).
//! * **Graceful degradation** — per-sensor circuit breakers
//!   ([`HealthTracker`]) quarantine chronically dark sensors behind the
//!   deterministic imputation path; every response carries a
//!   [`DataQuality`](stsm_core::DataQuality) summary.
//! * **Hot-swap** — [`Server::swap_model`] installs a new
//!   [`SharedModel`](stsm_core::SharedModel) epoch-style (config
//!   fingerprints must match; in-flight requests are never dropped).
//! * **Panic containment** — a worker panic answers that one caller with
//!   [`ServeError::WorkerPanicked`], rebuilds the worker's predictor, and
//!   keeps serving.
//! * **Determinism** — after any fault schedule, a clean-input forecast is
//!   bitwise identical to one from an undisturbed server (given equal
//!   breaker state), because every degradation routes through the same
//!   deterministic sanitize-and-impute path.
//!
//! See `DESIGN.md`, "Serving", for the architecture discussion and
//! `STSM_SERVE_WORKERS` / `STSM_SERVE_QUEUE_DEPTH` / `STSM_SERVE_DEADLINE_MS`
//! in the README for deployment knobs.

#![warn(missing_docs)]

mod config;
mod error;
mod health;
mod ingest;
mod server;

pub use config::ServeConfig;
pub use error::ServeError;
pub use health::HealthTracker;
pub use ingest::IngestRing;
pub use server::{ForecastRequest, ForecastResponse, Pending, RequestKind, ServeStats, Server};

// Re-exported so serving callers need only this crate for the common loop.
pub use stsm_core::{Predictor, SharedModel};
