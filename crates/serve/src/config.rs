//! Service tuning knobs and their environment overrides.

use std::time::Duration;

/// Tuning knobs of a [`Server`](crate::Server).
///
/// [`ServeConfig::from_env`] reads the documented `STSM_SERVE_*` variables on
/// top of these defaults; unset, empty, or unparsable values keep the
/// default (the same fail-safe convention as `STSM_INFER_DTYPE`), so a stray
/// variable can degrade a knob to its default but never to an arbitrary
/// value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads in the predictor pool. Each worker owns one
    /// `InferSession` (sessions are thread-pinned), built inside the worker
    /// thread from the shared model `Arc`. Env: `STSM_SERVE_WORKERS`.
    pub workers: usize,
    /// Bounded queue capacity; a submit that finds the queue full (after
    /// watermark shedding) is rejected with
    /// [`Overloaded`](crate::ServeError::Overloaded).
    /// Env: `STSM_SERVE_QUEUE_DEPTH`.
    pub queue_depth: usize,
    /// Once the queue holds at least this many jobs, each submit first sheds
    /// already-expired requests from the queue head (answering them with
    /// [`DeadlineExceeded`](crate::ServeError::DeadlineExceeded)) before
    /// deciding admission — under overload, capacity goes to requests that
    /// can still meet their deadlines. Defaults to 3/4 of `queue_depth`.
    pub shed_watermark: usize,
    /// Deadline budget applied to requests that don't carry their own.
    /// `None` (the default) means no deadline. Env: `STSM_SERVE_DEADLINE_MS`
    /// (milliseconds; `0` disables).
    pub default_deadline: Option<Duration>,
    /// Consecutive fully non-finite *steps*, counted in input windows, after
    /// which a sensor's circuit breaker opens: `trip = windows * t_in` bad
    /// steps in a row. An open breaker masks the sensor out of `Latest`
    /// snapshots (routing it through the imputation path) even after it
    /// resumes emitting, quarantining recovery garbage.
    pub breaker_trip_windows: usize,
    /// Consecutive finite steps (again `windows * t_in`) an open breaker
    /// must observe before it closes and the sensor's readings are trusted
    /// again.
    pub breaker_close_windows: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            shed_watermark: 48,
            default_deadline: None,
            breaker_trip_windows: 3,
            breaker_close_windows: 1,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `STSM_SERVE_WORKERS`, `STSM_SERVE_QUEUE_DEPTH`
    /// and `STSM_SERVE_DEADLINE_MS` where set and parsable. The shed
    /// watermark follows `queue_depth` (3/4 of it) unless the default depth
    /// is kept.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(w) = env_usize("STSM_SERVE_WORKERS") {
            cfg.workers = w.max(1);
        }
        if let Some(d) = env_usize("STSM_SERVE_QUEUE_DEPTH") {
            cfg.queue_depth = d.max(1);
            cfg.shed_watermark = (cfg.queue_depth * 3 / 4).max(1);
        }
        if let Some(ms) = env_usize("STSM_SERVE_DEADLINE_MS") {
            cfg.default_deadline = (ms > 0).then(|| Duration::from_millis(ms as u64));
        }
        cfg
    }

    /// `shed_watermark`/`queue_depth` clamped into a consistent order
    /// (watermark at least 1, at most the queue depth).
    pub(crate) fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.shed_watermark = self.shed_watermark.clamp(1, self.queue_depth);
        self
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|s| s.trim().parse::<usize>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = ServeConfig::default().normalized();
        assert!(cfg.workers >= 1);
        assert!(cfg.shed_watermark <= cfg.queue_depth);
        assert!(cfg.default_deadline.is_none());
    }

    #[test]
    fn normalized_clamps_watermark() {
        let cfg = ServeConfig { queue_depth: 4, shed_watermark: 99, ..ServeConfig::default() }
            .normalized();
        assert_eq!(cfg.shed_watermark, 4);
    }
}
