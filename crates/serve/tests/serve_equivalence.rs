//! Equivalence suite: serving must change *where* forecasts are computed,
//! never *what* they are.
//!
//! * The telemetry gate is bitwise invisible: a served forecast with
//!   `STSM_TELEMETRY` on equals one with it off, bit for bit.
//! * A served window forecast equals the direct batch-path
//!   [`Predictor`](stsm_core::Predictor) forecast, bit for bit — for the
//!   f32 pool, the quantized pool, and across hot-swaps in both directions.
//! * Hot-swap compatibility: a `QuantizedStsm` swaps over a running f32
//!   pool and vice versa (same config fingerprint); a checkpoint with a
//!   different fingerprint is rejected and the old model keeps serving.
//! * Graceful drain: `begin_drain` rejects new work with `ShuttingDown`
//!   while everything already queued still completes.

use std::sync::Arc;
use stsm_core::{
    train_stsm, DistanceMode, OnlineConfig, OnlineTrainer, Predictor, ProblemInstance, StsmConfig,
    TrainedStsm,
};
use stsm_serve::{ForecastRequest, ServeConfig, ServeError, Server, SharedModel};
use stsm_synth::{space_split, SplitAxis};
use stsm_tensor::{telemetry, DType};

fn tiny_dataset(seed: u64) -> stsm_synth::Dataset {
    stsm_synth::test_support::tiny_dataset("serve-eq", seed)
}

fn tiny_cfg(seed: u64) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 4,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: 8,
        seed,
        ..Default::default()
    }
}

fn bits(t: &stsm_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn setup(seed: u64) -> (Arc<ProblemInstance>, StsmConfig, Arc<TrainedStsm>) {
    let dataset = tiny_dataset(seed);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let p = Arc::new(ProblemInstance::new(dataset, split, DistanceMode::Euclidean));
    let cfg = tiny_cfg(seed);
    let (trained, _) = train_stsm(&p, &cfg).expect("trains");
    (p, cfg, Arc::new(trained))
}

/// Serves one `Latest` and one `Window` forecast on a fresh single-worker
/// server and returns the concatenated output bits.
fn serve_once(p: &Arc<ProblemInstance>, model: SharedModel, t_in: usize) -> Vec<u32> {
    let server =
        Server::start(Arc::clone(p), model, ServeConfig { workers: 1, ..ServeConfig::default() });
    for t in 0..t_in {
        let step: Vec<f32> = p.observed.iter().map(|&g| p.scaled_value(g, t)).collect();
        server.ingest_step(&step);
    }
    let latest =
        server.submit(ForecastRequest::latest()).expect("admitted").wait().expect("latest");
    let window = server
        .submit(ForecastRequest::window(p.test_time.start))
        .expect("admitted")
        .wait()
        .expect("window");
    assert!(latest.quality.is_clean());
    let mut out = bits(&latest.prediction);
    out.extend(bits(&window.prediction));
    server.shutdown();
    out
}

#[test]
fn telemetry_gate_and_drain_are_output_invisible() {
    let (p, cfg, trained) = setup(130);
    let model = SharedModel::F32(Arc::clone(&trained));

    // The zero-overhead telemetry contract extends to the serving layer:
    // identical output bits with the registry on and off.
    let on = telemetry::with_telemetry(true, || serve_once(&p, model.clone(), cfg.t_in));
    let off = telemetry::with_telemetry(false, || serve_once(&p, model.clone(), cfg.t_in));
    assert_eq!(on, off, "telemetry gate must be bitwise invisible to served forecasts");

    // Graceful drain: queued work completes, new work is rejected typed.
    let server =
        Server::start(Arc::clone(&p), model, ServeConfig { workers: 1, ..ServeConfig::default() });
    let queued: Vec<_> = (0..4)
        .map(|_| server.submit(ForecastRequest::window(p.test_time.start)).expect("admitted"))
        .collect();
    server.begin_drain();
    assert!(matches!(
        server.submit(ForecastRequest::window(p.test_time.start)),
        Err(ServeError::ShuttingDown)
    ));
    let stats = server.shutdown();
    for q in queued {
        q.wait().expect("draining must complete already-queued work");
    }
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.shutdown_rejected, 1);
}

#[test]
fn hot_swap_compatibility_both_directions_and_fingerprint_rejection() {
    let (p, _cfg, trained) = setup(131);
    let f32_model = SharedModel::F32(Arc::clone(&trained));
    let quant = Arc::new(trained.quantize(DType::F16));
    let quant_model = SharedModel::Quantized(Arc::clone(&quant));
    let abs_start = p.test_time.start;

    // Direct batch-path references for both precisions.
    let (ref_f32, _) =
        Predictor::new_with_dtype(&trained, &p, DType::F32).predict_window_checked(&p, abs_start);
    let (ref_quant, _) = Predictor::new_quantized(&quant, &p).predict_window_checked(&p, abs_start);

    // Quantized checkpoint over a running f32 pool.
    let server = Server::start(
        Arc::clone(&p),
        f32_model.clone(),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    );
    let before = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("f32 forecast");
    assert_eq!(before.generation, 0);
    assert_eq!(bits(&before.prediction), bits(&ref_f32), "served == batch path (f32)");
    assert_eq!(server.swap_model(quant_model.clone()).expect("fingerprints match"), 1);
    let after = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("quantized forecast");
    assert_eq!(after.generation, 1);
    assert_eq!(bits(&after.prediction), bits(&ref_quant), "served == batch path (f16)");

    // A checkpoint trained under a different config must be rejected, and
    // the serving model must be untouched by the failed swap.
    let mut other = TrainedStsm::from_json(&trained.to_json()).expect("round-trips");
    other.cfg.epochs += 1; // any config delta changes the fingerprint
    let err = server
        .swap_model(SharedModel::F32(Arc::new(other)))
        .expect_err("mismatched fingerprint must be rejected");
    match err {
        ServeError::FingerprintMismatch { serving, offered } => assert_ne!(serving, offered),
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    let still = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("still serving");
    assert_eq!(still.generation, 1, "failed swap must not bump the generation");
    assert_eq!(bits(&still.prediction), bits(&ref_quant));
    let stats = server.shutdown();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.swaps_rejected, 1);

    // Vice versa: f32 checkpoint over a running quantized pool.
    let server = Server::start(
        Arc::clone(&p),
        quant_model,
        ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    let before = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("quantized forecast");
    assert_eq!(bits(&before.prediction), bits(&ref_quant));
    assert_eq!(server.swap_model(f32_model).expect("fingerprints match"), 1);
    let after = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("f32 forecast");
    assert_eq!(bits(&after.prediction), bits(&ref_f32));
    server.shutdown();
}

#[test]
fn online_refresh_hot_swaps_fine_tuned_weights() {
    let (p, _cfg, trained) = setup(132);
    let abs_start = p.test_time.start;
    let server = Server::start(
        Arc::clone(&p),
        SharedModel::F32(Arc::clone(&trained)),
        ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    let before = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("pre-refresh forecast");
    assert_eq!(before.generation, 0);

    // Fine-tune online and push the refreshed weights through the same
    // fingerprint-gated path as an operator-initiated swap.
    let online_cfg = OnlineConfig { replay_windows: 16, lr_scale: 0.5, refresh_every: 1 };
    let mut online = OnlineTrainer::from_trained(&p, &trained, online_cfg).expect("wraps");
    online.fine_tune_epoch(&p, p.train_time.end).expect("fine-tunes");
    let snapshot = online.trained().expect("snapshot");
    assert_eq!(server.swap_refreshed(&online).expect("same fingerprint"), 1);

    // The served forecast now matches the batch path over the refreshed
    // snapshot, bit for bit — and differs from the pre-refresh forecast.
    let (ref_new, _) = Predictor::new(&snapshot, &p).predict_window_checked(&p, abs_start);
    let after = server
        .submit(ForecastRequest::window(abs_start))
        .expect("admitted")
        .wait()
        .expect("post-refresh forecast");
    assert_eq!(after.generation, 1);
    assert_eq!(bits(&after.prediction), bits(&ref_new), "served == batch path (refreshed)");
    assert_ne!(
        bits(&after.prediction),
        bits(&before.prediction),
        "fine-tuning must actually move the weights"
    );
    let stats = server.shutdown();
    assert_eq!(stats.swaps, 1);
}
