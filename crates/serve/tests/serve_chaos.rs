//! Chaos suite: seeded fault schedules thrown at a running server.
//!
//! The contract under test: **every request terminates in a forecast or a
//! typed rejection** — through NaN bursts, sensor blackouts, worker panics,
//! queue overflow, expired deadlines, and a hot-swap under load — and after
//! the chaos ends, a clean-input forecast is bitwise identical to one from
//! a server that never saw any fault.

use std::sync::Arc;
use std::time::Duration;
use stsm_core::{train_stsm, DistanceMode, ProblemInstance, StsmConfig};
use stsm_serve::{ForecastRequest, ServeConfig, ServeError, Server, SharedModel};
use stsm_synth::{space_split, FaultPlan, FaultSchedule, SplitAxis};

fn tiny_dataset(seed: u64) -> stsm_synth::Dataset {
    stsm_synth::test_support::tiny_dataset("chaos", seed)
}

fn tiny_cfg(seed: u64) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 4,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: 8,
        seed,
        ..Default::default()
    }
}

fn bits(t: &stsm_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// One clean step of scaled observed readings at absolute time `t`.
fn clean_step(p: &ProblemInstance, t: usize) -> Vec<f32> {
    p.observed.iter().map(|&g| p.scaled_value(g, t)).collect()
}

/// Spins until everything queued has been picked up by a worker (the pool
/// may still be executing). Panics rather than hanging if that never
/// happens.
fn wait_queue_drained(server: &Server) {
    for _ in 0..2_000 {
        if server.queue_len() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("queue never drained");
}

#[test]
fn chaos_schedule_every_request_terminates_and_recovery_is_bitwise() {
    let dataset = tiny_dataset(120);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let p = Arc::new(ProblemInstance::new(dataset, split, DistanceMode::Euclidean));
    let cfg = tiny_cfg(120);
    let t_in = cfg.t_in;
    let (trained, _) = train_stsm(&p, &cfg).expect("trains");
    let model = SharedModel::F32(Arc::new(trained));

    let serve_cfg = ServeConfig {
        workers: 2,
        queue_depth: 4,
        shed_watermark: 4,
        default_deadline: None,
        breaker_trip_windows: 1,  // trip after t_in consecutive bad steps
        breaker_close_windows: 1, // close after t_in consecutive good steps
    };
    let server = Server::start(Arc::clone(&p), model.clone(), serve_cfg);

    // Everything the chaos server ever ingests, for the twin server later.
    let mut history: Vec<Vec<f32>> = Vec::new();
    let mut outcomes_ok = 0u64;
    let mut outcomes_err = 0u64;
    let mut stall_answers = 0u64;

    // --- Cold start: typed rejection before a full window exists.
    match server.submit(ForecastRequest::latest()) {
        Err(ServeError::ColdStart { have: 0, need }) => assert_eq!(need, t_in),
        other => panic!("expected ColdStart, got {:?}", other.err()),
    }

    // --- Phase 1: stream 2*t_in steps through a seeded fault schedule
    // (NaN bursts, blackout windows, spikes on the observed sensors),
    // submitting a Latest forecast after each step once warm.
    let plan = FaultPlan {
        seed: 29,
        nan_rate: 0.25,
        dropout_windows: 2,
        dropout_len: 4,
        spike_rate: 0.05,
        spike_scale: 1e3,
        sensors: Some(p.observed.clone()),
        time_range: Some(0..2 * t_in),
    };
    let schedule = FaultSchedule::new(&plan, p.n(), p.dataset.t_total);
    let mut corrupted_readings = 0usize;
    for t in 0..2 * t_in {
        let step: Vec<f32> =
            p.observed.iter().map(|&g| schedule.corrupt(g, t, p.scaled_value(g, t))).collect();
        corrupted_readings += step.iter().filter(|v| !v.is_finite()).count();
        server.ingest_step(&step);
        history.push(step);
        if t + 1 >= t_in {
            let resp = server
                .submit(ForecastRequest::latest())
                .expect("admitted")
                .wait()
                .expect("faulted inputs must still forecast");
            assert!(resp.prediction.data().iter().all(|v| v.is_finite()));
            outcomes_ok += 1;
        }
    }
    assert!(corrupted_readings > 0, "the schedule must actually corrupt the stream");

    // --- Window requests: valid start works, out-of-range is a typed
    // rejection, not a panic.
    let resp = server
        .submit(ForecastRequest::window(p.test_time.start))
        .expect("admitted")
        .wait()
        .expect("window forecast");
    assert!(resp.prediction.data().iter().all(|v| v.is_finite()));
    outcomes_ok += 1;
    match server.submit(ForecastRequest::window(usize::MAX / 2)) {
        Err(ServeError::BadRequest(_)) => {}
        other => panic!("expected BadRequest, got {:?}", other.err()),
    }

    // --- Panic containment: the panicking request gets a typed answer and
    // the pool keeps serving afterwards.
    match server.submit(ForecastRequest::chaos_panic()).expect("admitted").wait() {
        Err(ServeError::WorkerPanicked) => outcomes_err += 1,
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let resp = server
        .submit(ForecastRequest::latest())
        .expect("admitted")
        .wait()
        .expect("pool must survive a worker panic");
    assert!(resp.prediction.data().iter().all(|v| v.is_finite()));
    outcomes_ok += 1;

    // --- Deadline shed at pop: occupy both workers, then submit a request
    // whose budget is already zero; by the time a worker reaches it, it is
    // late and must be shed without compute.
    let stalls: Vec<_> = (0..2)
        .map(|_| {
            server
                .submit(ForecastRequest::chaos_stall(Duration::from_millis(200)))
                .expect("admitted")
        })
        .collect();
    wait_queue_drained(&server); // both workers are now inside the stalls
    let doomed =
        server.submit(ForecastRequest::latest().with_deadline(Duration::ZERO)).expect("admitted");
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => outcomes_err += 1,
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    for s in stalls {
        match s.wait() {
            Err(ServeError::BadRequest(_)) => {
                stall_answers += 1;
                outcomes_err += 1;
            }
            other => panic!("expected stall BadRequest, got {other:?}"),
        }
    }

    // --- Backpressure: occupy both workers, fill the queue with undeadlined
    // requests, and the next submit is a typed Overloaded rejection.
    let stalls: Vec<_> = (0..2)
        .map(|_| {
            server
                .submit(ForecastRequest::chaos_stall(Duration::from_millis(400)))
                .expect("admitted")
        })
        .collect();
    wait_queue_drained(&server);
    let queued: Vec<_> =
        (0..4).map(|_| server.submit(ForecastRequest::latest()).expect("fits in queue")).collect();
    match server.submit(ForecastRequest::latest()) {
        Err(ServeError::Overloaded { depth }) => assert_eq!(depth, 4),
        other => panic!("expected Overloaded, got {:?}", other.err()),
    }
    for s in stalls {
        assert!(matches!(s.wait(), Err(ServeError::BadRequest(_))));
        stall_answers += 1;
        outcomes_err += 1;
    }
    for q in queued {
        q.wait().expect("queued requests drain after the stall");
        outcomes_ok += 1;
    }

    // --- Circuit breaker: one sensor goes dark for a full window of steps,
    // trips, gets masked out of Latest snapshots, then recovers and closes.
    for k in 0..t_in {
        let mut step = clean_step(&p, 2 * t_in + k);
        step[0] = f32::NAN;
        server.ingest_step(&step);
        history.push(step);
    }
    let masked = server
        .submit(ForecastRequest::latest())
        .expect("admitted")
        .wait()
        .expect("forecast with open breaker");
    assert_eq!(masked.breaker_masked, 1, "the dark sensor must be breaker-masked");
    assert!(!masked.quality.is_clean());
    assert_eq!(masked.quality.unrecoverable, 0, "neighbors are finite, so blend recovers");
    outcomes_ok += 1;
    assert!(server.stats().breaker_trips >= 1);
    // Recovery: a clean window of steps closes every breaker again (the
    // phase-1 fault schedule may have tripped others; all have seen a full
    // clean window by now).
    for k in 0..t_in {
        let step = clean_step(&p, 3 * t_in + k);
        server.ingest_step(&step);
        history.push(step);
    }
    let s = server.stats();
    assert_eq!(s.breaker_closes, s.breaker_trips, "all breakers must be closed after recovery");

    // --- Hot-swap under load: same weights re-offered as a new epoch. The
    // ring is untouched between the two forecasts, so the pre- and post-swap
    // predictions must be bitwise identical — proof no request straddled a
    // half-installed model.
    let before = server
        .submit(ForecastRequest::latest())
        .expect("admitted")
        .wait()
        .expect("pre-swap forecast");
    outcomes_ok += 1;
    let in_flight: Vec<_> =
        (0..3).map(|_| server.submit(ForecastRequest::latest()).expect("admitted")).collect();
    let generation = server.swap_model(model.clone()).expect("same fingerprint swaps");
    assert_eq!(generation, 1);
    for f in in_flight {
        f.wait().expect("in-flight requests survive the swap");
        outcomes_ok += 1;
    }
    let after = server
        .submit(ForecastRequest::latest())
        .expect("admitted")
        .wait()
        .expect("post-swap forecast");
    assert_eq!(after.generation, 1);
    assert_eq!(bits(&before.prediction), bits(&after.prediction));
    outcomes_ok += 1;

    // --- Post-chaos equivalence: a twin server that never saw a fault,
    // fed the same number of steps with the same (clean) trailing window,
    // must produce the bitwise-identical forecast.
    let twin = Server::start(Arc::clone(&p), model.clone(), ServeConfig::default());
    let tail = history.len() - t_in;
    for (i, step) in history.iter().enumerate() {
        if i < tail {
            twin.ingest_step(&clean_step(&p, i));
        } else {
            twin.ingest_step(step); // the trailing window is clean by construction
        }
    }
    let undisturbed = twin
        .submit(ForecastRequest::latest())
        .expect("admitted")
        .wait()
        .expect("undisturbed forecast");
    assert!(undisturbed.quality.is_clean());
    assert_eq!(
        bits(&after.prediction),
        bits(&undisturbed.prediction),
        "post-chaos clean-input forecast must be bitwise identical to an undisturbed server's"
    );
    twin.shutdown();

    // --- Accounting: nothing was silently dropped.
    let stats = server.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert!(stats.worker_respawns >= 1);
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.cold_start, 1);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.completed, outcomes_ok);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.deadline_exceeded + stats.worker_panics + stall_answers,
        "every accepted request must be accounted for: {stats:?}"
    );
    let _ = outcomes_err;
}
