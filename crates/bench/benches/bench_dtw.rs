//! Component bench behind Fig. 7 / the `A_dtw` construction (§3.4.1):
//! banded DTW on daily profiles, single-pair and all-pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stsm_timeseries::{dtw_all_pairs, dtw_banded};

fn profiles(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..len).map(|t| ((t as f32) * 0.3 + i as f32 * 0.7).sin() + 0.1 * (i as f32)).collect()
        })
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    group.sample_size(20);
    let series = profiles(2, 72);
    for band in [4usize, 8, 72] {
        group.bench_with_input(BenchmarkId::new("single_pair", band), &band, |b, &band| {
            b.iter(|| dtw_banded(black_box(&series[0]), black_box(&series[1]), band))
        });
    }
    let many = profiles(64, 48);
    group
        .bench_function("all_pairs_64x48_band6", |b| b.iter(|| dtw_all_pairs(black_box(&many), 6)));
    group.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
