//! Component bench behind Table 4 (training time): one full STSM training
//! run on a miniature problem — masking, pseudo-observations, DTW adjacency
//! and optimizer steps included.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stsm_core::{train_stsm, DistanceMode, ProblemInstance, StsmConfig, Variant};
use stsm_synth::{space_split, DatasetConfig, NetworkKind, SignalKind, SplitAxis};

fn problem() -> ProblemInstance {
    let d = DatasetConfig {
        name: "bench".into(),
        network: NetworkKind::Highway,
        sensors: 60,
        extent: 15_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 6,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 5_000.0,
        poi_radius: 300.0,
        seed: 7,
    }
    .generate();
    let split = space_split(&d.coords, SplitAxis::Horizontal, false);
    ProblemInstance::new(d, split, DistanceMode::Euclidean)
}

fn bench_train(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for (label, variant) in [("stsm", Variant::Stsm), ("stsm_rnc", Variant::StsmRnc)] {
        let cfg = StsmConfig {
            t_in: 6,
            t_out: 6,
            hidden: 8,
            blocks: 1,
            gcn_depth: 2,
            epochs: 1,
            windows_per_epoch: 4,
            batch_windows: 4,
            top_k: 12,
            ..Default::default()
        }
        .with_variant(variant);
        group.bench_function(format!("one_epoch_{label}"), |b| {
            b.iter(|| train_stsm(black_box(&p), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
