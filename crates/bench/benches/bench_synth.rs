//! Component bench behind Figs. 5/6: synthetic dataset generation —
//! network layout, POI/road features and signal simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stsm_synth::{four_standard_splits, generate_network, DatasetConfig, NetworkKind, SignalKind};

fn bench_synth(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    for kind in [NetworkKind::Highway, NetworkKind::UrbanGrid, NetworkKind::TwoCities] {
        group.bench_with_input(
            BenchmarkId::new("network", format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| generate_network(kind, 200, 40_000.0, black_box(1))),
        );
    }
    group.bench_function("dataset_100_sensors_4_days", |b| {
        b.iter(|| {
            DatasetConfig {
                name: "bench".into(),
                network: NetworkKind::Highway,
                sensors: 100,
                extent: 20_000.0,
                steps_per_day: 48,
                interval_minutes: 30,
                days: 4,
                kind: SignalKind::TrafficSpeed,
                latent_scale: 6_000.0,
                poi_radius: 300.0,
                seed: black_box(9),
            }
            .generate()
        })
    });
    let coords: Vec<[f64; 2]> =
        (0..400).map(|i| [(i % 20) as f64 * 100.0, (i / 20) as f64 * 100.0]).collect();
    group.bench_function("four_standard_splits_400", |b| {
        b.iter(|| four_standard_splits(black_box(&coords)))
    });
    group.finish();
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
