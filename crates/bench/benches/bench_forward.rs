//! Component bench behind Table 5 (testing time): a single ST-model forward
//! pass at realistic node counts, for both temporal modules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use stsm_core::{predict_once, StModel, StsmConfig, TemporalModule};
use stsm_graph::{gaussian_threshold_adjacency, normalize_gcn, pairwise_euclidean, CsrLinMap};
use stsm_tensor::nn::randn;
use stsm_tensor::ParamStore;

fn adjacency(n: usize) -> Arc<CsrLinMap> {
    let coords: Vec<[f64; 2]> =
        (0..n).map(|i| [(i % 20) as f64 * 500.0, (i / 20) as f64 * 500.0]).collect();
    let d = pairwise_euclidean(&coords);
    Arc::new(CsrLinMap::new(normalize_gcn(&gaussian_threshold_adjacency(&d, n, 0.3))))
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    group.sample_size(10);
    for &n in &[100usize, 325] {
        for temporal in [TemporalModule::DilatedConv, TemporalModule::Transformer] {
            let cfg = StsmConfig {
                t_in: 8,
                t_out: 8,
                hidden: 16,
                blocks: 2,
                gcn_depth: 2,
                temporal,
                ..Default::default()
            };
            let mut store = ParamStore::new();
            let model = StModel::new(&mut store, &cfg);
            let mut rng = StdRng::seed_from_u64(1);
            let x = randn([n, 8, 1], 1.0, &mut rng);
            let tf = StModel::time_features(0, 8, 288);
            let a = adjacency(n);
            let label = format!("{temporal:?}_n{n}");
            group.bench_with_input(BenchmarkId::new("predict_once", label), &n, |b, _| {
                b.iter(|| predict_once(&model, &store, black_box(&x), &tf, &a, &a))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
