//! Component bench behind Tables 6/7: the three baselines' full
//! train+evaluate cycles on a miniature problem, so their relative cost
//! (GE-GAN slow to train, IGNNK/INCREASE slow to test — Table 5's pattern)
//! is measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stsm_baselines::{run_gegan, run_ignnk, run_increase, BaselineConfig};
use stsm_core::{DistanceMode, ProblemInstance};
use stsm_synth::{space_split, DatasetConfig, NetworkKind, SignalKind, SplitAxis};

fn problem() -> ProblemInstance {
    let d = DatasetConfig {
        name: "bench".into(),
        network: NetworkKind::Highway,
        sensors: 50,
        extent: 12_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 6,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 5_000.0,
        poi_radius: 300.0,
        seed: 11,
    }
    .generate();
    let split = space_split(&d.coords, SplitAxis::Horizontal, false);
    ProblemInstance::new(d, split, DistanceMode::Euclidean)
}

fn bench_baselines(c: &mut Criterion) {
    let p = problem();
    let cfg = BaselineConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        epochs: 1,
        windows_per_epoch: 4,
        k_neighbors: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("gegan_cycle", |b| b.iter(|| run_gegan(black_box(&p), &cfg)));
    group.bench_function("ignnk_cycle", |b| b.iter(|| run_ignnk(black_box(&p), &cfg)));
    group.bench_function("increase_cycle", |b| b.iter(|| run_increase(black_box(&p), &cfg)));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
