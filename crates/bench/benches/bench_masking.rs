//! Component bench behind Table 8 / Fig. 9 / Fig. 10: building the selective
//! masking context (sub-graph embeddings + Eq. 15 probabilities) and drawing
//! masks.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use stsm_core::{DistanceMode, MaskingContext, ProblemInstance};
use stsm_synth::{space_split, DatasetConfig, NetworkKind, SignalKind, SplitAxis};

fn problem() -> ProblemInstance {
    let d = DatasetConfig {
        name: "bench".into(),
        network: NetworkKind::Highway,
        sensors: 120,
        extent: 30_000.0,
        steps_per_day: 48,
        interval_minutes: 30,
        days: 4,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 8_000.0,
        poi_radius: 300.0,
        seed: 3,
    }
    .generate();
    let split = space_split(&d.coords, SplitAxis::Horizontal, false);
    ProblemInstance::new(d, split, DistanceMode::Euclidean)
}

fn bench_masking(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("masking");
    group.sample_size(20);
    group.bench_function("context_build_120_sensors", |b| {
        b.iter(|| MaskingContext::new(black_box(&p), 0.5, 0.5, 35))
    });
    let ctx = MaskingContext::new(&p, 0.5, 0.5, 35);
    group.bench_function("draw_selective", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(ctx.draw_selective(&mut rng)))
    });
    group.bench_function("draw_random", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(ctx.draw_random(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_masking);
criterion_main!(benches);
