//! Runs every experiment binary's logic in sequence — the one-shot
//! regeneration of all paper tables and figures. Equivalent to running
//! `table4..table11`, `fig7..fig10`, `figmaps` back to back; results land in
//! `results/*.json` and the tables print to stdout.

use std::process::Command;

fn main() {
    let scale = std::env::var("STSM_SCALE").unwrap_or_else(|_| "quick".into());
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("exe dir").to_path_buf();
    let experiments = [
        "figmaps", "fig7", "table4", "table5", "fig8", "table6", "table7", "table8", "fig9",
        "fig10", "table9", "table10", "table11",
    ];
    let started = std::time::Instant::now();
    for exp in experiments {
        let bin = exe_dir.join(exp);
        println!("\n================ running {exp} (STSM_SCALE={scale}) ================\n");
        let status = Command::new(&bin)
            .env("STSM_SCALE", &scale)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        if !status.success() {
            eprintln!("experiment {exp} failed with {status}");
            std::process::exit(1);
        }
    }
    println!(
        "\nAll experiments completed in {:.1} minutes. Results in results/*.json.",
        started.elapsed().as_secs_f64() / 60.0
    );
}
