//! Table 7: varying the density of sensors on PEMS-08 — from 200 up to the
//! full 964 sensors over the same region.

use stsm_bench::{
    apply_sensor_cap, print_metrics_table, run_dataset_lineup, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Table 7 — Varying the density of sensors (PEMS-08, scale: {scale:?})");
    // Generate the densest network once; sparser datasets sample from it so
    // the region (and the underlying signal field) stays identical.
    let full = presets::pems_08(964, days, seed).generate();
    let models = [ModelId::GeGan, ModelId::Ignnk, ModelId::Increase, ModelId::Stsm(Variant::Stsm)];
    let counts: &[usize] =
        if scale == Scale::Smoke { &[20, 40] } else { &[200, 400, 600, 800, 964] };
    let mut payload = serde_json::Map::new();
    for &count in counts {
        // Uniform stride sample keeps the spatial extent (density sweep).
        let stride = (full.n as f64 / count as f64).max(1.0);
        let mut keep: Vec<usize> =
            (0..count).map(|i| ((i as f64 * stride) as usize).min(full.n - 1)).collect();
        keep.dedup();
        let sub = apply_sensor_cap(full.subset(&keep), scale);
        let rows = run_dataset_lineup(&sub, &models, scale, seed);
        print_metrics_table(&format!("{} sensors (density sweep)", sub.n), &rows);
        payload.insert(count.to_string(), serde_json::to_value(&rows).expect("serialize"));
    }
    save_results("table7", &serde_json::Value::Object(payload));
}
