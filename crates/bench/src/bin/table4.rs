//! Table 4: overall model performance — GE-GAN / IGNNK / INCREASE vs the
//! four main STSM variants on all five datasets.

use stsm_bench::{
    apply_sensor_cap, improvement_vs_best_baseline, print_metrics_table, run_dataset_lineup,
    save_results, ModelId, Scale,
};
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Table 4 — Overall model performance (scale: {scale:?})");
    let datasets = [
        presets::pems_bay(days, seed),
        presets::pems_07(days, seed),
        presets::pems_08(400, days, seed),
        presets::melbourne(days, seed),
        presets::airq(days.max(6), seed),
    ];
    let lineup = ModelId::table4_lineup();
    let mut all = serde_json::Map::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        let rows = run_dataset_lineup(&dataset, &lineup, scale, seed);
        print_metrics_table(&dataset.name, &rows);
        if let Some((rmse, mae, mape, r2)) = improvement_vs_best_baseline(&rows) {
            let fmt = |v: f64| {
                if v.is_nan() {
                    "N/A".to_string()
                } else {
                    format!("{v:+.2}%")
                }
            };
            println!(
                "Improvement vs best baseline: RMSE {} | MAE {} | MAPE {} | R2 {}",
                fmt(rmse),
                fmt(mae),
                fmt(mape),
                fmt(r2)
            );
        }
        all.insert(dataset.name.clone(), serde_json::to_value(&rows).expect("serialize"));
    }
    save_results("table4", &serde_json::Value::Object(all));
}
