//! Times the pool-parallelized hot-path kernels against their serial paths
//! and writes `BENCH_kernels.json` at the repository root.
//!
//! The serial measurements run under `pool::with_max_threads(1)`, which
//! forces the inline path without touching the environment, so one process
//! measures both sides. Results are bit-identical by the pool's determinism
//! contract; this binary only compares wall-clock.
//!
//! ```bash
//! cargo run -p stsm-bench --release --bin bench_kernels
//! ```

use serde_json::json;
use std::time::Instant;
use stsm_tensor::{bmm, conv1d_dilated, matmul, pool, Tensor};
use stsm_timeseries::dtw_all_pairs;

/// Deterministic pseudo-random fill in [-0.5, 0.5) — no RNG state needed.
fn fill(len: usize, mul: usize, modulo: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * mul) % modulo) as f32 / modulo as f32 - 0.5).collect()
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bench_case(name: &str, size: &str, reps: usize, mut f: impl FnMut()) -> serde_json::Value {
    let serial_ms = pool::with_max_threads(1, || best_ms(reps, &mut f));
    let parallel_ms = best_ms(reps, &mut f);
    let speedup = serial_ms / parallel_ms;
    println!(
        "{name:<28} {size:<24} serial {serial_ms:>9.2} ms   pool {parallel_ms:>9.2} ms   speedup {speedup:>5.2}x"
    );
    json!({
        "name": name,
        "size": size,
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": speedup,
    })
}

fn main() {
    let threads = pool::num_threads();
    println!("pool threads: {threads} (STSM_NUM_THREADS overrides)\n");
    let mut cases = Vec::new();

    // matmul at two sizes, both past the parallel threshold.
    for &dim in &[256usize, 512] {
        let a = Tensor::from_vec([dim, dim], fill(dim * dim, 2654435761, 1000003));
        let b = Tensor::from_vec([dim, dim], fill(dim * dim, 40503, 999983));
        let reps = if dim >= 512 { 3 } else { 5 };
        cases.push(bench_case("matmul", &format!("{dim}x{dim}x{dim}"), reps, || {
            matmul(&a, &b);
        }));
    }

    // Batched matmul: parallel over the batch axis.
    {
        let (bs, m, k, n) = (16usize, 96usize, 96usize, 96usize);
        let a = Tensor::from_vec([bs, m, k], fill(bs * m * k, 97, 999979));
        let b = Tensor::from_vec([bs, k, n], fill(bs * k * n, 89, 999961));
        cases.push(bench_case("bmm", &format!("{bs}x{m}x{k}x{n}"), 5, || {
            bmm(&a, &b);
        }));
    }

    // Dilated conv over (N, C_out) rows — STSM's TCN shape at daily length.
    {
        let (n, cin, cout, t, k) = (64usize, 32usize, 32usize, 288usize, 3usize);
        let x = Tensor::from_vec([n, cin, t], fill(n * cin * t, 31, 999959));
        let w = Tensor::from_vec([cout, cin, k], fill(cout * cin * k, 7, 997));
        cases.push(bench_case("conv1d_dilated", &format!("{n}x{cin}->{cout}x{t} k{k}"), 5, || {
            conv1d_dilated(&x, &w, None, 2);
        }));
    }

    // All-pairs DTW at the paper's daily-profile scale (band 16).
    for &n_series in &[100usize, 200] {
        let steps = 288usize;
        let series: Vec<Vec<f32>> = (0..n_series)
            .map(|s| {
                (0..steps)
                    .map(|i| ((i * (s + 3)) as f32 * 0.021).sin() + (s as f32 * 0.013).cos())
                    .collect()
            })
            .collect();
        let reps = if n_series >= 200 { 2 } else { 3 };
        cases.push(bench_case(
            "dtw_all_pairs",
            &format!("{n_series}x{steps} band16"),
            reps,
            || {
                dtw_all_pairs(&series, 16);
            },
        ));
    }

    let report = json!({
        "threads": threads,
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "note": "serial = pool::with_max_threads(1); results bit-identical, only wall-clock differs",
        "cases": cases,
    });
    // crates/bench -> repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
        .expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}
