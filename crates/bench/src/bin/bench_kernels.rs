//! Times the pool-parallelized hot-path kernels against their serial paths
//! and writes `BENCH_kernels.json` at the repository root.
//!
//! The serial measurements run under `pool::with_max_threads(1)`, which
//! forces the inline path without touching the environment, so one process
//! measures both sides. Results are bit-identical by the pool's determinism
//! contract; this binary only compares wall-clock. Cases with a known
//! floating-op count also report GFLOP/s so kernel changes can be judged
//! against machine peak, not just against the previous run.
//!
//! ```bash
//! cargo run -p stsm-bench --release --bin bench_kernels            # full run
//! cargo run -p stsm-bench --release --bin bench_kernels -- --smoke # CI wiring check
//! ```
//!
//! `--smoke` runs every case once at tiny sizes and does *not* overwrite
//! `BENCH_kernels.json` — it exists so `scripts/check.sh` can prove the
//! bench binary still builds and runs without paying full-size timings.

use serde_json::json;
use std::time::Instant;
use stsm_tensor::{bmm, conv1d_dilated, matmul, pool, Tensor};
use stsm_timeseries::dtw_all_pairs;

/// Deterministic pseudo-random fill in [-0.5, 0.5) — no RNG state needed.
fn fill(len: usize, mul: usize, modulo: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * mul) % modulo) as f32 / modulo as f32 - 0.5).collect()
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn gflops(flops: Option<f64>, ms: f64) -> Option<f64> {
    flops.map(|fl| fl / (ms * 1e-3) / 1e9)
}

/// One serial-vs-pool case. `flops` is the floating-op count of a single
/// call (2·m·k·n for a matmul) when one is meaningful.
fn bench_case(
    name: &str,
    size: &str,
    reps: usize,
    flops: Option<f64>,
    mut f: impl FnMut(),
) -> serde_json::Value {
    let serial_ms = pool::with_max_threads(1, || best_ms(reps, &mut f));
    let parallel_ms = best_ms(reps, &mut f);
    let speedup = serial_ms / parallel_ms;
    let gf = gflops(flops, parallel_ms);
    let gf_col = gf.map_or(String::from("        -"), |g| format!("{g:>7.2} GF/s"));
    println!(
        "{name:<28} {size:<24} serial {serial_ms:>9.2} ms   pool {parallel_ms:>9.2} ms   speedup {speedup:>5.2}x   {gf_col}"
    );
    json!({
        "name": name,
        "size": size,
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": speedup,
        "gflops_serial": gflops(flops, serial_ms),
        "gflops_parallel": gf,
    })
}

/// Two named routes to the same result (no serial/pool split): used for the
/// view-vs-copy window-gather comparison. Reported in the same JSON shape
/// with `speedup = baseline / candidate`.
fn bench_pair(
    name: &str,
    size: &str,
    reps: usize,
    mut baseline: impl FnMut(),
    mut candidate: impl FnMut(),
) -> serde_json::Value {
    let base_ms = best_ms(reps, &mut baseline);
    let cand_ms = best_ms(reps, &mut candidate);
    let speedup = base_ms / cand_ms;
    println!(
        "{name:<28} {size:<24} copy   {base_ms:>9.2} ms   view {cand_ms:>9.2} ms   speedup {speedup:>5.2}x           -"
    );
    json!({
        "name": name,
        "size": size,
        "serial_ms": base_ms,
        "parallel_ms": cand_ms,
        "speedup": speedup,
        "gflops_serial": null,
        "gflops_parallel": null,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = pool::num_threads();
    println!("pool threads: {threads} (STSM_NUM_THREADS overrides){}\n", {
        if smoke {
            "   [smoke: tiny sizes, JSON not written]"
        } else {
            ""
        }
    });
    let mut cases = Vec::new();

    // matmul at two sizes, both past the packing threshold.
    let matmul_dims: &[usize] = if smoke { &[64] } else { &[256, 512] };
    for &dim in matmul_dims {
        let a = Tensor::from_vec([dim, dim], fill(dim * dim, 2654435761, 1000003));
        let b = Tensor::from_vec([dim, dim], fill(dim * dim, 40503, 999983));
        let reps = if smoke {
            1
        } else if dim >= 512 {
            3
        } else {
            5
        };
        let flops = 2.0 * (dim * dim * dim) as f64;
        cases.push(bench_case("matmul", &format!("{dim}x{dim}x{dim}"), reps, Some(flops), || {
            matmul(&a, &b);
        }));
    }

    // Batched matmul: packing shared across batch entries when possible.
    {
        let (bs, m, k, n) =
            if smoke { (2usize, 24usize, 24usize, 24usize) } else { (16, 96, 96, 96) };
        let a = Tensor::from_vec([bs, m, k], fill(bs * m * k, 97, 999979));
        let b = Tensor::from_vec([bs, k, n], fill(bs * k * n, 89, 999961));
        let flops = 2.0 * (bs * m * k * n) as f64;
        let reps = if smoke { 1 } else { 5 };
        cases.push(bench_case("bmm", &format!("{bs}x{m}x{k}x{n}"), reps, Some(flops), || {
            bmm(&a, &b);
        }));
    }

    // Dilated conv over (N, C_out) rows — STSM's TCN shape at daily length.
    {
        let (n, cin, cout, t, k) =
            if smoke { (4usize, 8usize, 8usize, 48usize, 3usize) } else { (64, 32, 32, 288, 3) };
        let x = Tensor::from_vec([n, cin, t], fill(n * cin * t, 31, 999959));
        let w = Tensor::from_vec([cout, cin, k], fill(cout * cin * k, 7, 997));
        let flops = 2.0 * (n * cout * cin * k * t) as f64;
        let reps = if smoke { 1 } else { 5 };
        cases.push(bench_case(
            "conv1d_dilated",
            &format!("{n}x{cin}->{cout}x{t} k{k}"),
            reps,
            Some(flops),
            || {
                conv1d_dilated(&x, &w, None, 2);
            },
        ));
    }

    // All-pairs DTW at the paper's daily-profile scale (band 16), pair-chunk
    // dispatch.
    let dtw_sizes: &[usize] = if smoke { &[20] } else { &[100, 200] };
    for &n_series in dtw_sizes {
        let steps = if smoke { 48usize } else { 288 };
        let series: Vec<Vec<f32>> = (0..n_series)
            .map(|s| {
                (0..steps)
                    .map(|i| ((i * (s + 3)) as f32 * 0.021).sin() + (s as f32 * 0.013).cos())
                    .collect()
            })
            .collect();
        let reps = if smoke {
            1
        } else if n_series >= 200 {
            2
        } else {
            3
        };
        cases.push(bench_case(
            "dtw_all_pairs",
            &format!("{n_series}x{steps} band16"),
            reps,
            None,
            || {
                dtw_all_pairs(&series, 16);
            },
        ));
    }

    // Trainer-style window gathers: materialize every window as a fresh
    // tensor (old route) vs stream a stride-aware view into one reused
    // buffer (new route). Same bytes either way.
    {
        let (rows, t_total, t_in) =
            if smoke { (16usize, 96usize, 12usize) } else { (200, 2016, 24) };
        let mat = Tensor::from_vec([rows, t_total], fill(rows * t_total, 53, 999953));
        let starts: Vec<usize> = (0..(t_total - t_in)).step_by(3).collect();
        let reps = if smoke { 1 } else { 5 };
        let copy_route = || {
            for &s in &starts {
                std::hint::black_box(mat.view().slice(1, s, s + t_in).to_tensor());
            }
        };
        let mut buf: Vec<f32> = Vec::with_capacity(rows * t_in);
        let view_route = || {
            for &s in &starts {
                buf.clear();
                let w = mat.view().slice(1, s, s + t_in);
                for r in 0..rows {
                    w.index(0, r).extend_into(&mut buf);
                }
                std::hint::black_box(&buf);
            }
        };
        cases.push(bench_pair(
            "gather_view_vs_copy",
            &format!("{rows}x{t_in} of T{t_total}"),
            reps,
            copy_route,
            view_route,
        ));
    }

    if smoke {
        println!("\nsmoke run complete (BENCH_kernels.json left untouched)");
        return;
    }

    let report = json!({
        "threads": threads,
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "note": "serial = pool::with_max_threads(1); results bit-identical, only wall-clock differs; gflops from 2mkn-style op counts",
        "cases": cases,
    });
    // crates/bench -> repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
        .expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}
