//! Fig. 9: sensitivity to the top-K parameter of selective masking — RMSE of
//! STSM and STSM-NC as K varies.

use stsm_bench::{apply_sensor_cap, distance_mode_for, save_results, ModelId, Scale};
use stsm_core::{ProblemInstance, Variant};
use stsm_synth::{presets, space_split, SplitAxis};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Fig. 9 — Sensitivity to top-K (scale: {scale:?})\n");
    let datasets = [
        presets::pems_bay(days, seed),
        presets::melbourne(days, seed),
        presets::airq(days.max(6), seed),
    ];
    let variants = [Variant::Stsm, Variant::StsmNc];
    let mut payload = serde_json::Map::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        println!("## {}\n", dataset.name);
        println!("| K | STSM RMSE | STSM-NC RMSE |");
        println!("|---|-----------|--------------|");
        let ks: Vec<usize> = if dataset.n < 60 { vec![5, 10, 20] } else { vec![5, 15, 25, 35, 45] };
        let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
        let mut series = Vec::new();
        for &k in &ks {
            let mut row = Vec::new();
            for &v in &variants {
                let model = ModelId::Stsm(v);
                let problem =
                    ProblemInstance::new(dataset.clone(), split.clone(), distance_mode_for(model));
                // Override the Table 3 K with the sweep value.
                let mut stsm_cfg = scale.stsm_config(&dataset.name, seed).with_variant(v);
                stsm_cfg.top_k = k;
                let (trained, _) = stsm_core::train_stsm(&problem, &stsm_cfg).expect("trains");
                let eval = stsm_core::evaluate_stsm(&trained, &problem).expect("evaluates");
                row.push(eval.metrics.rmse);
            }
            println!("| {k} | {:>9.3} | {:>12.3} |", row[0], row[1]);
            series.push(serde_json::json!({ "k": k, "stsm": row[0], "stsm_nc": row[1] }));
        }
        println!();
        payload.insert(dataset.name.clone(), serde_json::Value::Array(series));
    }
    save_results("fig9", &serde_json::Value::Object(payload));
}
