//! Fig. 7: sparsity of the two spatial adjacency matrices on PEMS-Bay — the
//! GCN adjacency `A_s` (ε_s = 0.05) vs the sub-graph adjacency `A_sg`
//! (larger ε → sparser). Printed as density statistics plus an ASCII
//! block-density sketch instead of a bitmap.

use stsm_bench::{apply_sensor_cap, save_results, Scale};
use stsm_core::{DistanceMode, ProblemInstance};
use stsm_graph::CsrMatrix;
use stsm_synth::{presets, space_split, SplitAxis};

fn sketch(matrix: &CsrMatrix, cells: usize) -> Vec<String> {
    // Aggregate the adjacency into a cells×cells density grid.
    let n = matrix.rows();
    let block = n.div_ceil(cells);
    let mut counts = vec![0usize; cells * cells];
    for (r, c, _) in matrix.iter() {
        counts[(r / block).min(cells - 1) * cells + (c / block).min(cells - 1)] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    counts
        .chunks(cells)
        .map(|row| {
            row.iter()
                .map(|&c| {
                    let shade = c * 4 / max;
                    [' ', '.', ':', '#', '@'][shade.min(4)]
                })
                .collect()
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# Fig. 7 — Adjacency matrix sparsity on PEMS-Bay (scale: {scale:?})\n");
    let dataset = apply_sensor_cap(presets::pems_bay(scale.days(), seed).generate(), scale);
    let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let all: Vec<usize> = (0..problem.n()).collect();
    let cfg = scale.stsm_config("PEMS-Bay", seed);
    let a_s = problem.spatial_adjacency(&all, cfg.epsilon_s);
    let a_sg = problem.spatial_adjacency(&all, cfg.epsilon_sg);
    println!(
        "A_s  (eps = {:.2}): {} edges, density {:.4}",
        cfg.epsilon_s,
        a_s.nnz(),
        a_s.density()
    );
    println!(
        "A_sg (eps = {:.2}): {} edges, density {:.4}",
        cfg.epsilon_sg,
        a_sg.nnz(),
        a_sg.density()
    );
    assert!(a_sg.nnz() <= a_s.nnz(), "the larger threshold must give the sparser matrix");
    println!("\nA_s density sketch (rows = node blocks):");
    for line in sketch(&a_s, 24) {
        println!("  |{line}|");
    }
    println!("\nA_sg density sketch:");
    for line in sketch(&a_sg, 24) {
        println!("  |{line}|");
    }
    save_results(
        "fig7",
        &serde_json::json!({
            "a_s": { "epsilon": cfg.epsilon_s, "nnz": a_s.nnz(), "density": a_s.density() },
            "a_sg": { "epsilon": cfg.epsilon_sg, "nnz": a_sg.nnz(), "density": a_sg.density() },
        }),
    );
}
