//! Table 5: model training and testing time over the traffic datasets
//! (the paper omits AirQ for its small scale).

use stsm_bench::{
    apply_sensor_cap, print_timing_table, run_dataset_lineup, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Table 5 — Model training/testing time (scale: {scale:?})");
    let models = [ModelId::GeGan, ModelId::Ignnk, ModelId::Increase, ModelId::Stsm(Variant::Stsm)];
    let datasets = [
        presets::pems_bay(days, seed),
        presets::pems_07(days, seed),
        presets::pems_08(400, days, seed),
        presets::melbourne(days, seed),
    ];
    let mut named: Vec<(String, Vec<stsm_bench::RunResult>)> = Vec::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        let rows = run_dataset_lineup(&dataset, &models, scale, seed);
        named.push((dataset.name.clone(), rows));
    }
    let view: Vec<(&str, Vec<stsm_bench::RunResult>)> =
        named.iter().map(|(n, r)| (n.as_str(), r.clone())).collect();
    print_timing_table("Training and testing time", &view);
    let payload =
        serde_json::to_value(named.iter().map(|(n, r)| (n.clone(), r.clone())).collect::<Vec<_>>())
            .expect("serialize");
    save_results("table5", &payload);
}
