//! Fig. 8: RMSE vs unobserved ratio (0.2–0.5) — STSM against INCREASE, the
//! strongest baseline, on all five datasets.

use stsm_bench::{
    apply_sensor_cap, average_results, distance_mode_for, run_model, save_results, ModelId, Scale,
};
use stsm_core::{ProblemInstance, Variant};
use stsm_synth::{presets, space_split_ratio, SplitAxis};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Fig. 8 — RMSE vs unobserved ratio (scale: {scale:?})\n");
    let datasets = [
        presets::pems_bay(days, seed),
        presets::pems_07(days, seed),
        presets::pems_08(400, days, seed),
        presets::melbourne(days, seed),
        presets::airq(days.max(6), seed),
    ];
    let models = [ModelId::Increase, ModelId::Stsm(Variant::Stsm)];
    let ratios = [0.2, 0.3, 0.4, 0.5];
    let mut payload = serde_json::Map::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        println!("## {}\n", dataset.name);
        println!("| Unobserved ratio | INCREASE RMSE | STSM RMSE |");
        println!("|------------------|---------------|-----------|");
        let mut series = Vec::new();
        for &ratio in &ratios {
            // Average over axis directions, as in the paper.
            let mut row = Vec::new();
            for &model in &models {
                let mut per = Vec::new();
                for (axis, flip) in [(SplitAxis::Horizontal, false), (SplitAxis::Vertical, false)]
                    .iter()
                    .take(scale.splits().max(1))
                {
                    let split = space_split_ratio(&dataset.coords, *axis, *flip, ratio);
                    let problem =
                        ProblemInstance::new(dataset.clone(), split, distance_mode_for(model));
                    per.push(run_model(&problem, model, scale, seed));
                }
                row.push(average_results(&per));
            }
            println!(
                "| {:>16.1} | {:>13.3} | {:>9.3} |",
                ratio, row[0].metrics.rmse, row[1].metrics.rmse
            );
            series.push(serde_json::json!({
                "ratio": ratio,
                "increase_rmse": row[0].metrics.rmse,
                "stsm_rmse": row[1].metrics.rmse,
            }));
        }
        println!();
        payload.insert(dataset.name.clone(), serde_json::Value::Array(series));
    }
    save_results("fig8", &serde_json::Value::Object(payload));
}
