//! Table 11: distance functions on PEMS-Bay — Euclidean STSM vs road-network
//! distance for matrices + pseudo-observations (rd-a) or matrices only
//! (rd-m), §5.2.6.

use stsm_bench::{
    apply_sensor_cap, print_metrics_table, run_dataset_lineup, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# Table 11 — Distance functions on PEMS-Bay (scale: {scale:?})");
    let dataset = apply_sensor_cap(presets::pems_bay(scale.days(), seed).generate(), scale);
    let models = [
        ModelId::Stsm(Variant::Stsm),
        ModelId::Stsm(Variant::StsmRdA),
        ModelId::Stsm(Variant::StsmRdM),
    ];
    let rows = run_dataset_lineup(&dataset, &models, scale, seed);
    print_metrics_table("PEMS-Bay: Euclidean vs road-network distance", &rows);
    save_results("table11", &serde_json::to_value(&rows).expect("serialize"));
}
