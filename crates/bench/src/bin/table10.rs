//! Table 10: STSM vs STSM-trans (transformer temporal module + gated fusion)
//! on PEMS-Bay — the extensibility experiment of §5.2.5.

use stsm_bench::{
    apply_sensor_cap, print_metrics_table, run_dataset_lineup, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# Table 10 — Advanced temporal correlation module on PEMS-Bay (scale: {scale:?})");
    let dataset = apply_sensor_cap(presets::pems_bay(scale.days(), seed).generate(), scale);
    let models = [ModelId::Stsm(Variant::Stsm), ModelId::Stsm(Variant::StsmTrans)];
    let rows = run_dataset_lineup(&dataset, &models, scale, seed);
    print_metrics_table("PEMS-Bay: STSM vs STSM-trans", &rows);
    save_results("table10", &serde_json::to_value(&rows).expect("serialize"));
}
