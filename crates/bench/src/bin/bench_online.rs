//! Online-adaptation benchmark (ISSUE 10) — writes `BENCH_online.json` at
//! the repository root.
//!
//! Two measurements:
//!
//! 1. **Adjacency maintenance.** A population of sensor series grows window
//!    by window. The incremental route appends each window's suffix to the
//!    [`RollingNeighbors`] frontiers and warm-refreshes the top-q rows; the
//!    reference route refits `dtw_top_q` from scratch on the full prefixes
//!    every window. After every window the rolling rows are asserted
//!    bitwise identical to the refit before any timing is reported, and the
//!    full run requires the incremental route to be at least
//!    [`REQUIRED_SPEEDUP`]× faster at N=1k.
//!
//! 2. **Accuracy over time.** For each scripted scenario ({region growth,
//!    sensor churn, regime shift} from [`ScenarioPlan`]) the disturbed
//!    stream is forecast window by window by an STSM model that fine-tunes
//!    online every few windows, and by the time-of-day historical-average
//!    baseline. Both per-window RMSE curves (scored against the clean
//!    ground truth) land in the report.
//!
//! ```bash
//! cargo run -p stsm-bench --release --bin bench_online            # full run
//! cargo run -p stsm-bench --release --bin bench_online -- --smoke # seconds
//! ```

use serde_json::{json, Value};
use std::time::Instant;
use stsm_core::{
    train_stsm, DistanceMode, OnlineConfig, OnlineTrainer, Predictor, ProblemInstance, StsmConfig,
};
use stsm_synth::{space_split, test_support, ScenarioKind, ScenarioPlan, SplitAxis};
use stsm_timeseries::{dtw_top_q, sliding_windows, Metrics, RollingNeighbors};

const BAND: usize = 6;
const TOP_Q: usize = 8;
const SEED: u64 = 4242;
/// Full-run acceptance floor for incremental vs per-window refit at N=1k.
const REQUIRED_SPEEDUP: f64 = 3.0;

// ------------------------------------------------------------- adjacency

struct AdjCase {
    n: usize,
    start_len: usize,
    step: usize,
    windows: usize,
    incremental_secs: f64,
    refit_secs: f64,
}

impl AdjCase {
    fn speedup(&self) -> f64 {
        self.refit_secs / self.incremental_secs
    }
}

/// Streams `n` synthetic series from half their length to full length in
/// `step`-sized windows, timing incremental maintenance against a
/// from-scratch refit and asserting bitwise row agreement every window.
fn run_adjacency(n: usize, days: usize, step: usize) -> AdjCase {
    let dataset = test_support::tiny_dataset_sized("bench-online-adj", SEED, n, days);
    let t_total = dataset.t_total;
    let series: Vec<Vec<f32>> = (0..n).map(|i| dataset.series(i).to_vec()).collect();
    drop(dataset);
    let start_len = t_total / 2;

    let prefixes: Vec<Vec<f32>> = series.iter().map(|s| s[..start_len].to_vec()).collect();
    let mut rn = RollingNeighbors::from_series(&prefixes, BAND, TOP_Q);

    let (mut len, mut windows) = (start_len, 0usize);
    let (mut incremental_secs, mut refit_secs) = (0.0f64, 0.0f64);
    while len < t_total {
        let next = (len + step).min(t_total);
        let t0 = Instant::now();
        for (id, s) in series.iter().enumerate() {
            rn.append(id, &s[len..next]);
        }
        rn.refresh();
        incremental_secs += t0.elapsed().as_secs_f64();
        len = next;
        windows += 1;

        let prefixes: Vec<Vec<f32>> = series.iter().map(|s| s[..len].to_vec()).collect();
        let t0 = Instant::now();
        let (want, _) = dtw_top_q(&prefixes, BAND, TOP_Q);
        refit_secs += t0.elapsed().as_secs_f64();
        let (_, got) = rn.to_sparse();
        assert_eq!(got, want, "n={n}: rolling rows diverged from the refit at length {len}");
    }
    let case = AdjCase { n, start_len, step, windows, incremental_secs, refit_secs };
    println!(
        "n={n}: {windows} windows of {step} steps — incremental {:.3}s, refit {:.3}s \
         ({:.1}x, rows bitwise identical)",
        case.incremental_secs,
        case.refit_secs,
        case.speedup()
    );
    case
}

// ------------------------------------------------------------- scenarios

struct Curves {
    kind: ScenarioKind,
    change_points: Vec<usize>,
    stsm: Vec<f64>,
    baseline: Vec<f64>,
    fine_tune_epochs: usize,
}

fn scenario_cfg(sensors: usize) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 2,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: TOP_Q.min(sensors / 2),
        seed: SEED,
        ..Default::default()
    }
}

/// Builds the disturbed stream for `kind`, trains STSM on it, then walks
/// the test period window by window collecting both accuracy curves.
fn run_scenario(kind: ScenarioKind, sensors: usize, days: usize) -> Curves {
    let dataset = test_support::tiny_dataset_sized("bench-online", SEED, sensors, days);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let clean = ProblemInstance::new(dataset.clone(), split.clone(), DistanceMode::Euclidean);
    let plan = ScenarioPlan::new(kind, SEED, dataset.n, dataset.t_total, clean.test_time.clone());
    let mut streamed = dataset;
    for s in 0..streamed.n {
        for t in clean.test_time.clone() {
            let v = streamed.values[s * streamed.t_total + t];
            streamed.values[s * streamed.t_total + t] = plan.reading(s, t, v);
        }
    }
    let disturbed = ProblemInstance::new(streamed, split, DistanceMode::Euclidean);

    let cfg = scenario_cfg(sensors);
    let (trained, _) = train_stsm(&disturbed, &cfg).expect("trains");
    let online_cfg = OnlineConfig { replay_windows: 24, lr_scale: 0.25, refresh_every: 2 };
    let mut online = OnlineTrainer::from_trained(&disturbed, &trained, online_cfg).expect("wraps");
    let epochs_at_start = online.epochs_done();

    let windows = sliding_windows(disturbed.test_time.len(), cfg.t_in, cfg.t_out, cfg.t_out);
    let mut current = online.trained().expect("snapshot");
    let mut stsm = Vec::with_capacity(windows.len());
    for (wi, w) in windows.iter().enumerate() {
        let abs_start = disturbed.test_time.start + w.input_start;
        let mut predictor = Predictor::new(&current, &disturbed);
        let (pred, _quality) = predictor.predict_window_checked(&disturbed, abs_start);
        let target_start = abs_start + cfg.t_in;
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for &u in &disturbed.unobserved {
            for p in 0..cfg.t_out {
                preds.push(disturbed.scaler.inverse(pred.at(&[u, p, 0])));
                truths.push(clean.dataset.value(u, target_start + p));
            }
        }
        stsm.push(Metrics::compute(&preds, &truths).rmse);
        if (wi + 1) % online.online_config().refresh_every == 0 {
            let now = target_start + cfg.t_out;
            let _ = online.fine_tune_epoch(&disturbed, now).expect("fine-tunes");
            current = online.trained().expect("refreshed snapshot");
        }
    }

    // Time-of-day historical average of the observed training readings.
    let spd = disturbed.steps_per_day();
    let mut tod_sum = vec![0.0f64; spd];
    let mut tod_cnt = vec![0usize; spd];
    for &g in &disturbed.observed {
        for t in disturbed.train_time.clone() {
            let v = disturbed.dataset.value(g, t);
            if v.is_finite() {
                tod_sum[t % spd] += v as f64;
                tod_cnt[t % spd] += 1;
            }
        }
    }
    let tod_mean: Vec<f32> = tod_sum
        .iter()
        .zip(&tod_cnt)
        .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
        .collect();
    let baseline: Vec<f64> = windows
        .iter()
        .map(|w| {
            let target_start = disturbed.test_time.start + w.input_start + cfg.t_in;
            let mut preds = Vec::new();
            let mut truths = Vec::new();
            for &u in &disturbed.unobserved {
                for k in 0..cfg.t_out {
                    preds.push(tod_mean[(target_start + k) % spd]);
                    truths.push(clean.dataset.value(u, target_start + k));
                }
            }
            Metrics::compute(&preds, &truths).rmse
        })
        .collect();

    let fine_tune_epochs = online.epochs_done() - epochs_at_start;
    assert!(stsm.iter().chain(&baseline).all(|v| v.is_finite()), "{}: curve", kind.name());
    println!(
        "{:<12} {} windows, {} fine-tune epochs — STSM RMSE first {:.3} last {:.3}, \
         baseline first {:.3} last {:.3}",
        kind.name(),
        stsm.len(),
        fine_tune_epochs,
        stsm.first().unwrap(),
        stsm.last().unwrap(),
        baseline.first().unwrap(),
        baseline.last().unwrap()
    );
    Curves { kind, change_points: plan.change_points(), stsm, baseline, fine_tune_epochs }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("STSM_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("smoke"));
    // Adjacency: (population, day span); scenarios: (population, day span).
    let (adj_n, adj_days, sc_n, sc_days) = if smoke { (120, 4, 24, 8) } else { (1_000, 7, 48, 8) };
    println!(
        "online adaptation bench (band {BAND}, top-{TOP_Q}, seed {SEED}){}\n",
        if smoke { " — smoke sizes" } else { "" }
    );

    let adj = run_adjacency(adj_n, adj_days, 6);
    if !smoke {
        assert!(
            adj.speedup() >= REQUIRED_SPEEDUP,
            "incremental maintenance must be at least {REQUIRED_SPEEDUP}x faster than \
             per-window refit at n={} (got {:.2}x)",
            adj.n,
            adj.speedup()
        );
    }
    println!();

    let scenarios: Vec<Curves> =
        ScenarioKind::ALL.iter().map(|&k| run_scenario(k, sc_n, sc_days)).collect();

    let scenario_values: Vec<Value> = scenarios
        .iter()
        .map(|c| {
            json!({
                "kind": c.kind.name(),
                "change_points": c.change_points,
                "fine_tune_epochs": c.fine_tune_epochs,
                "stsm_rmse": c.stsm,
                "baseline_rmse": c.baseline,
            })
        })
        .collect();
    let report = json!({
        "workload": format!(
            "incremental RollingNeighbors maintenance vs per-window dtw_top_q refit \
             (band {BAND}, top-{TOP_Q}), plus per-window RMSE curves for scripted \
             growth/churn/regime-shift scenarios (STSM with online fine-tuning vs \
             time-of-day historical average, scored against clean truth)"
        ),
        "smoke": smoke,
        "threads": stsm_tensor::pool::num_threads(),
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "note": "single-CPU container; seconds are indicative. Rolling rows are asserted \
                 bitwise identical to the from-scratch refit after every window before \
                 this file is written.",
        "adjacency": {
            "n": adj.n,
            "band": BAND,
            "top_q": TOP_Q,
            "start_len": adj.start_len,
            "append_step": adj.step,
            "windows": adj.windows,
            "incremental_seconds": adj.incremental_secs,
            "refit_seconds": adj.refit_secs,
            "speedup": adj.speedup(),
            "rows_bitwise_identical": true,
            "required_speedup": REQUIRED_SPEEDUP,
            "meets_required_speedup": adj.speedup() >= REQUIRED_SPEEDUP,
        },
        "online_config": { "replay_windows": 24, "lr_scale": 0.25, "refresh_every": 2 },
        "scenarios": scenario_values,
    });
    if smoke {
        println!("\nsmoke run: BENCH_online.json left untouched");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
        .expect("write BENCH_online.json");
    println!("\nwrote {path}");
}
