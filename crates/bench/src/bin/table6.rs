//! Table 6: varying the number of sensors 200–800 by merging the PEMS-07 and
//! PEMS-08 regions and slicing the combined space into vertical partitions.

use stsm_bench::{
    apply_sensor_cap, print_metrics_table, run_dataset_lineup, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::presets;

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!(
        "# Table 6 — Varying the number of sensors (PEMS-07 + PEMS-08 merged, scale: {scale:?})"
    );
    let d07 = presets::pems_07(days, seed).generate();
    let d08 = presets::pems_08(400, days, seed).generate();
    let merged = d07.merge(&d08);
    // Order sensors by x and take prefixes of 200, 400, 600, 800 — vertical
    // partitions of the merged region.
    let mut order: Vec<usize> = (0..merged.n).collect();
    order.sort_by(|&a, &b| merged.coords[a][0].partial_cmp(&merged.coords[b][0]).expect("finite"));
    let models = [ModelId::GeGan, ModelId::Ignnk, ModelId::Increase, ModelId::Stsm(Variant::Stsm)];
    let counts: &[usize] = if scale == Scale::Smoke { &[20, 40] } else { &[200, 400, 600, 800] };
    let mut payload = serde_json::Map::new();
    for &count in counts {
        let mut keep = order[..count.min(merged.n)].to_vec();
        keep.sort_unstable();
        let sub = apply_sensor_cap(merged.subset(&keep), scale);
        let rows = run_dataset_lineup(&sub, &models, scale, seed);
        print_metrics_table(&format!("{count} sensors"), &rows);
        payload.insert(count.to_string(), serde_json::to_value(&rows).expect("serialize"));
    }
    save_results("table6", &serde_json::Value::Object(payload));
}
