//! Measures DTW-adjacency construction at metro scale — the pruned sparse
//! top-q search vs the dense all-pairs route — and writes `BENCH_scale.json`
//! at the repository root.
//!
//! For each sensor count the metro-area generator lays out several urban
//! grids linked by highway corridors, daily profiles are extracted exactly
//! like `DtwContext` does, and the sparse search
//! (`stsm_timeseries::dtw_top_q`) is timed against `dtw_all_pairs` + a
//! per-row sort. The dense route is skipped above `DENSE_MAX` sensors (its
//! N² f32 buffer alone is 1.6 GB at 20k); where both run, the selected
//! top-q sets are asserted bitwise identical before the report is written.
//! Peak RSS per phase comes from the `VmHWM` watermark (Linux; `null`
//! elsewhere).
//!
//! ```bash
//! cargo run -p stsm-bench --release --bin bench_scale            # full sweep
//! cargo run -p stsm-bench --release --bin bench_scale -- --smoke # seconds
//! ```

use serde_json::{json, Value};
use std::time::Instant;
use stsm_bench::{peak_rss_bytes, reset_peak_rss};
use stsm_synth::presets;
use stsm_timeseries::{daily_profile, dtw_all_pairs, dtw_top_q, SparseNeighbors};

const BAND: usize = 6;
const TOP_Q: usize = 8;
const DOWNSAMPLE: usize = 4;
const DENSE_MAX: usize = 5_000;

struct Case {
    n: usize,
    sparse_secs: f64,
    sparse_peak_rss: Option<u64>,
    lb_kim_pruned: u64,
    lb_keogh_pruned: u64,
    full_dtw: u64,
    pruning_rate: f64,
    dense_secs: Option<f64>,
    dense_peak_rss: Option<u64>,
    verified: Option<bool>,
}

/// Dense reference: full pairwise matrix, then each row sorted by
/// `(distance, index)` and truncated — the pre-sparse adjacency route.
fn dense_top_q(profiles: &[Vec<f32>], band: usize, q: usize) -> Vec<Vec<(u32, f32)>> {
    let n = profiles.len();
    let d = dtw_all_pairs(profiles, band);
    (0..n)
        .map(|i| {
            let mut row: Vec<(u32, f32)> = (0..n as u32)
                .filter(|&j| j as usize != i)
                .map(|j| (j, d[i * n + j as usize]))
                .collect();
            row.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            row.truncate(q);
            row
        })
        .collect()
}

fn rows_match(sparse: &SparseNeighbors, dense: &[Vec<(u32, f32)>]) -> bool {
    (0..dense.len()).all(|i| {
        let got: Vec<(u32, u32)> = sparse.row(i).map(|(j, d)| (j, d.to_bits())).collect();
        let want: Vec<(u32, u32)> = dense[i].iter().map(|&(j, d)| (j, d.to_bits())).collect();
        got == want
    })
}

fn run_case(n: usize, days: usize, with_dense: bool) -> Case {
    let t0 = Instant::now();
    let dataset = presets::metro(n, days, 7).generate();
    let spd = dataset.steps_per_day;
    let profiles: Vec<Vec<f32>> =
        (0..n).map(|i| daily_profile(dataset.series(i), spd, DOWNSAMPLE)).collect();
    println!(
        "n={n}: generated metro dataset + {} profiles of length {} in {:.1}s",
        profiles.len(),
        profiles.first().map_or(0, Vec::len),
        t0.elapsed().as_secs_f64()
    );
    drop(dataset);

    reset_peak_rss();
    let t0 = Instant::now();
    let (sparse, stats) = dtw_top_q(&profiles, BAND, TOP_Q);
    let sparse_secs = t0.elapsed().as_secs_f64();
    let sparse_peak_rss = peak_rss_bytes();
    println!(
        "n={n}: sparse top-{TOP_Q} in {sparse_secs:.2}s, pruning rate {:.1}% \
         (kim {}, keogh {}, full {})",
        stats.pruning_rate() * 100.0,
        stats.lb_kim_pruned,
        stats.lb_keogh_pruned,
        stats.full_dtw
    );

    let (dense_secs, dense_peak_rss, verified) = if with_dense {
        reset_peak_rss();
        let t0 = Instant::now();
        let dense = dense_top_q(&profiles, BAND, TOP_Q);
        let secs = t0.elapsed().as_secs_f64();
        let peak = peak_rss_bytes();
        let ok = rows_match(&sparse, &dense);
        assert!(ok, "n={n}: pruned top-{TOP_Q} differs from the dense ranking");
        println!("n={n}: dense all-pairs in {secs:.2}s, top-{TOP_Q} sets bitwise identical");
        (Some(secs), peak, Some(ok))
    } else {
        println!("n={n}: dense route skipped (N² buffer would be {:.1} GB)", {
            (n * n * 4) as f64 / 1e9
        });
        (None, None, None)
    };

    Case {
        n,
        sparse_secs,
        sparse_peak_rss,
        lb_kim_pruned: stats.lb_kim_pruned,
        lb_keogh_pruned: stats.lb_keogh_pruned,
        full_dtw: stats.full_dtw,
        pruning_rate: stats.pruning_rate(),
        dense_secs,
        dense_peak_rss,
        verified,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("STSM_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("smoke"));
    let (sizes, days): (&[usize], usize) =
        if smoke { (&[60, 200], 1) } else { (&[200, 1_000, 5_000, 20_000], 2) };
    let rss_supported = reset_peak_rss();
    println!(
        "DTW adjacency scaling on the metro-area generator (band {BAND}, top-{TOP_Q}, \
         profile downsample {DOWNSAMPLE}){}\n",
        if rss_supported { "" } else { " — peak-RSS watermark unavailable, reporting null" }
    );
    let cases: Vec<Case> = sizes.iter().map(|&n| run_case(n, days, n <= DENSE_MAX)).collect();

    println!(
        "\n{:>7}  {:>10}  {:>10}  {:>8}  {:>9}",
        "n", "sparse s", "dense s", "speedup", "pruned %"
    );
    for c in &cases {
        println!(
            "{:>7}  {:>10.2}  {:>10}  {:>8}  {:>8.1}%",
            c.n,
            c.sparse_secs,
            c.dense_secs.map_or("-".into(), |d| format!("{d:.2}")),
            c.dense_secs.map_or("-".into(), |d| format!("{:.1}x", d / c.sparse_secs)),
            c.pruning_rate * 100.0
        );
    }

    let case_values: Vec<Value> = cases
        .iter()
        .map(|c| {
            json!({
                "n": c.n,
                "sparse": {
                    "seconds": c.sparse_secs,
                    "peak_rss_bytes": c.sparse_peak_rss,
                    "lb_kim_pruned": c.lb_kim_pruned,
                    "lb_keogh_pruned": c.lb_keogh_pruned,
                    "full_dtw": c.full_dtw,
                    "pruning_rate": c.pruning_rate,
                },
                "dense": c.dense_secs.map_or(Value::Null, |secs| json!({
                    "seconds": secs,
                    "peak_rss_bytes": c.dense_peak_rss,
                })),
                "speedup": c.dense_secs.map_or(Value::Null, |d| json!(d / c.sparse_secs)),
                "top_q_bitwise_identical": c.verified,
            })
        })
        .collect();
    let report = json!({
        "workload": format!(
            "metro-area generator -> daily profiles -> top-{TOP_Q} DTW neighbours \
             (band {BAND}, downsample {DOWNSAMPLE}); sparse = LB_Kim/LB_Keogh-pruned \
             search, dense = all-pairs matrix + per-row sort"
        ),
        "smoke": smoke,
        "threads": stsm_tensor::pool::num_threads(),
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "peak_rss_supported": rss_supported,
        "note": "single-CPU container; seconds are indicative, pruning counts are exact and \
                 thread-count independent. Dense route skipped above 5k sensors; where both \
                 run, top-q sets are asserted bitwise identical before this file is written.",
        "cases": case_values,
    });
    if smoke {
        println!("\nsmoke run: BENCH_scale.json left untouched");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
        .expect("write BENCH_scale.json");
    println!("\nwrote {path}");
}
