//! Table 8: similarity gain of selective masking over random masking — how
//! much more similar (to the unobserved region) the masked sub-graphs are
//! when the selective module picks them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stsm_bench::{apply_sensor_cap, save_results, Scale};
use stsm_core::{DistanceMode, MaskingContext, ProblemInstance};
use stsm_synth::{presets, space_split, SplitAxis};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Table 8 — Similarity gain of selective vs random masking (scale: {scale:?})\n");
    println!("| Dataset    | Selective sim. | Random sim. | Gain (%) |");
    println!("|------------|----------------|-------------|----------|");
    let datasets = [
        presets::pems_bay(days, seed),
        presets::pems_07(days, seed),
        presets::pems_08(400, days, seed),
        presets::melbourne(days, seed),
        presets::airq(days.max(6), seed),
    ];
    let mut payload = serde_json::Map::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        let stsm_cfg = scale.stsm_config(&dataset.name, seed);
        let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
        let name = dataset.name.clone();
        let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
        let ctx =
            MaskingContext::new(&problem, stsm_cfg.epsilon_sg, stsm_cfg.mask_ratio, stsm_cfg.top_k);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 200;
        let mut sel = 0.0f64;
        let mut rnd = 0.0f64;
        for _ in 0..draws {
            sel += ctx.mean_masked_similarity(&ctx.draw_selective(&mut rng)) as f64;
            rnd += ctx.mean_masked_similarity(&ctx.draw_random(&mut rng)) as f64;
        }
        sel /= draws as f64;
        rnd /= draws as f64;
        let gain = (sel - rnd) / rnd.abs().max(1e-9) * 100.0;
        println!("| {name:<10} | {sel:>14.4} | {rnd:>11.4} | {gain:>8.2} |");
        payload
            .insert(name, serde_json::json!({ "selective": sel, "random": rnd, "gain_pct": gain }));
    }
    save_results("table8", &serde_json::Value::Object(payload));
}
