//! Load generator for the `stsm-serve` forecast service: streams synthetic
//! ingestion (with a seeded fault mix) at a running server while closed-loop
//! clients submit forecast requests at several concurrency levels, and
//! writes `BENCH_serve.json` with p50/p99 request latency (from the
//! `serve.request` telemetry histogram) and req/s per level.
//!
//! Before any measurement, the same serving scenario is run with telemetry
//! on and off and the forecast bits are asserted identical — the
//! zero-overhead telemetry contract, extended to the serving layer.
//!
//! ```bash
//! cargo run -p stsm-bench --release --bin bench_serve             # full, writes JSON
//! cargo run -p stsm-bench --release --bin bench_serve -- --smoke  # quick, no artifact
//! ```
//!
//! Knobs: `--nan-rate=0.25` adjusts the fault mix fed to the ingest stream;
//! `--concurrency=1,2,4,8` overrides the measured client counts.

use serde_json::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stsm_core::{train_stsm, DistanceMode, ProblemInstance, StsmConfig};
use stsm_serve::{ForecastRequest, ServeConfig, ServeError, Server, SharedModel};
use stsm_synth::{
    space_split, DatasetConfig, FaultPlan, FaultSchedule, NetworkKind, SignalKind, SplitAxis,
};
use stsm_tensor::telemetry;

fn dataset(seed: u64) -> stsm_synth::Dataset {
    DatasetConfig {
        name: "serve-bench".into(),
        network: NetworkKind::Highway,
        sensors: 24,
        extent: 10_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 8,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 3_000.0,
        poi_radius: 300.0,
        seed,
    }
    .generate()
}

fn cfg(seed: u64) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 4,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: 8,
        seed,
        ..Default::default()
    }
}

fn clean_step(p: &ProblemInstance, t: usize) -> Vec<f32> {
    p.observed.iter().map(|&g| p.scaled_value(g, t)).collect()
}

/// One fixed serving scenario (single worker, clean ingest, one Latest and
/// one Window forecast); returns the concatenated output bits.
fn scenario_bits(p: &Arc<ProblemInstance>, model: &SharedModel, t_in: usize) -> Vec<u32> {
    let server = Server::start(
        Arc::clone(p),
        model.clone(),
        ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    for t in 0..t_in {
        server.ingest_step(&clean_step(p, t));
    }
    let a = server.submit(ForecastRequest::latest()).expect("admit").wait().expect("latest");
    let b = server
        .submit(ForecastRequest::window(p.test_time.start))
        .expect("admit")
        .wait()
        .expect("window");
    server.shutdown();
    let mut bits: Vec<u32> = a.prediction.data().iter().map(|v| v.to_bits()).collect();
    bits.extend(b.prediction.data().iter().map(|v| v.to_bits()));
    bits
}

struct LevelResult {
    concurrency: usize,
    requests: u64,
    completed: u64,
    rejected: u64,
    req_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    deadline_exceeded: u64,
    overloaded: u64,
    breaker_trips: u64,
}

/// Runs one closed-loop load level: `clients` threads each issue
/// `reqs_per_client` requests (a Latest/Window mix, some with deadlines)
/// while the main loop keeps streaming faulted ingest steps.
fn run_level(
    p: &Arc<ProblemInstance>,
    model: &SharedModel,
    t_in: usize,
    clients: usize,
    reqs_per_client: usize,
    nan_rate: f64,
) -> LevelResult {
    telemetry::with_telemetry(true, || {
        telemetry::reset();
        let server = Server::start(
            Arc::clone(p),
            model.clone(),
            ServeConfig { workers: 2, ..ServeConfig::default() },
        );
        let plan = FaultPlan {
            seed: 4242,
            nan_rate,
            dropout_windows: 1,
            dropout_len: 3,
            spike_rate: 0.02,
            spike_scale: 1e3,
            sensors: Some(p.observed.clone()),
            time_range: None,
        };
        let schedule = FaultSchedule::new(&plan, p.n(), p.dataset.t_total);
        let corrupt_step = |t: usize| -> Vec<f32> {
            p.observed
                .iter()
                .map(|&g| {
                    schedule.corrupt(
                        g,
                        t % p.dataset.t_total,
                        p.scaled_value(g, t % p.dataset.t_total),
                    )
                })
                .collect()
        };
        for t in 0..t_in {
            server.ingest_step(&corrupt_step(t));
        }
        let done = AtomicBool::new(false);
        let completed = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            // Ingest stream: one faulted step per millisecond until the
            // clients finish.
            s.spawn(|| {
                let mut t = t_in;
                while !done.load(Ordering::Relaxed) {
                    server.ingest_step(&corrupt_step(t));
                    t += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let mut handles = Vec::new();
            for c in 0..clients {
                let server = &server;
                let completed = &completed;
                let rejected = &rejected;
                handles.push(s.spawn(move || {
                    for i in 0..reqs_per_client {
                        let mut req = if (c + i) % 4 == 3 {
                            ForecastRequest::window(p.test_time.start + (i % 8))
                        } else {
                            ForecastRequest::latest()
                        };
                        if i % 8 == 7 {
                            req = req.with_deadline(Duration::from_secs(5));
                        }
                        match server.submit(req) {
                            Ok(pending) => match pending.wait() {
                                Ok(resp) => {
                                    assert!(resp.prediction.data().iter().all(|v| v.is_finite()));
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                            Err(ServeError::Overloaded { .. })
                            | Err(ServeError::ColdStart { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected rejection: {e}"),
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("client thread");
            }
            // Clients are done; release the ingest thread so the scope can
            // close.
            done.store(true, Ordering::Relaxed);
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let stats = server.shutdown();
        let snap = telemetry::snapshot();
        let (p50, p99) = snap
            .histograms
            .get("serve.request")
            .map(|h| (h.percentile_upper_micros(0.50), h.percentile_upper_micros(0.99)))
            .unwrap_or((0, 0));
        let completed = completed.into_inner();
        let rejected = rejected.into_inner();
        LevelResult {
            concurrency: clients,
            requests: completed + rejected,
            completed,
            rejected,
            req_per_sec: completed as f64 / elapsed,
            p50_micros: p50,
            p99_micros: p99,
            deadline_exceeded: stats.deadline_exceeded,
            overloaded: stats.overloaded,
            breaker_trips: stats.breaker_trips,
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let nan_rate = args
        .iter()
        .find_map(|a| a.strip_prefix("--nan-rate=").and_then(|v| v.parse::<f64>().ok()))
        .unwrap_or(0.1);
    let levels: Vec<usize> = args
        .iter()
        .find_map(|a| {
            a.strip_prefix("--concurrency=")
                .map(|v| v.split(',').filter_map(|n| n.parse().ok()).collect::<Vec<_>>())
        })
        .filter(|v: &Vec<usize>| v.len() >= 3 || smoke)
        .unwrap_or_else(|| vec![1, 2, 4]);
    let reqs_per_client = if smoke { 4 } else { 40 };

    let data = dataset(77);
    let split = space_split(&data.coords, SplitAxis::Vertical, false);
    let p = Arc::new(ProblemInstance::new(data, split, DistanceMode::Euclidean));
    let cfg = cfg(77);
    println!("training the served model ({} sensors, t_in {}) ...", p.n(), cfg.t_in);
    let (trained, _) = train_stsm(&p, &cfg).expect("trains");
    let model = SharedModel::F32(Arc::new(trained));

    // Zero-overhead contract before any measurement.
    let on = telemetry::with_telemetry(true, || scenario_bits(&p, &model, cfg.t_in));
    let off = telemetry::with_telemetry(false, || scenario_bits(&p, &model, cfg.t_in));
    assert_eq!(on, off, "telemetry gate must be bitwise invisible to served forecasts");
    println!("telemetry on/off forecasts bitwise identical ({} values)\n", on.len());

    stsm_bench::reset_peak_rss();
    let mut rows = Vec::new();
    for &c in &levels {
        let r = run_level(&p, &model, cfg.t_in, c, reqs_per_client, nan_rate);
        println!(
            "concurrency {:>2}  {:>7.1} req/s   p50 {:>6}µs   p99 {:>6}µs   \
             {}/{} completed ({} rejected, {} deadline, {} overload, {} breaker trips)",
            r.concurrency,
            r.req_per_sec,
            r.p50_micros,
            r.p99_micros,
            r.completed,
            r.requests,
            r.rejected,
            r.deadline_exceeded,
            r.overloaded,
            r.breaker_trips,
        );
        rows.push(r);
    }
    let peak_rss = stsm_bench::peak_rss_bytes();

    let report = json!({
        "workload": format!(
            "closed-loop clients over a 2-worker pool, {} sensors, t_in {}, nan_rate {nan_rate}, \
             {reqs_per_client} requests/client, streaming faulted ingest at ~1 step/ms",
            p.n(), cfg.t_in
        ),
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "peak_rss_bytes": peak_rss,
        "note": "single-CPU container: req/s and latency are indicative, ordering across \
                 concurrency levels is the signal. p50/p99 are upper bounds from the log2-bucket \
                 serve.request telemetry histogram (within 2x of the true quantile). Telemetry \
                 on/off forecast bits asserted identical before measuring.",
        "levels": rows.iter().map(|r| json!({
            "concurrency": r.concurrency,
            "requests": r.requests,
            "completed": r.completed,
            "rejected": r.rejected,
            "req_per_sec": r.req_per_sec,
            "p50_micros_upper": r.p50_micros,
            "p99_micros_upper": r.p99_micros,
            "deadline_exceeded": r.deadline_exceeded,
            "overloaded": r.overloaded,
            "breaker_trips": r.breaker_trips,
        })).collect::<Vec<_>>(),
    });
    if smoke {
        println!("\nsmoke run: BENCH_serve.json left untouched");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
            .expect("write BENCH_serve.json");
        println!("\nwrote {path}");
    }
}
