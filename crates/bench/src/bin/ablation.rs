//! Extra ablations beyond the paper's own (Table 4): the design choices
//! DESIGN.md calls out —
//!
//! 1. pseudo-observations (Eq. 3) vs zero-filling missing locations;
//! 2. the temporal-similarity adjacency `A_dtw` (q_ku in-links per
//!    unobserved location) from 0 (disabled) to 3;
//! 3. per-horizon error growth of the final model.

use stsm_bench::{apply_sensor_cap, save_results, Scale};
use stsm_core::{evaluate_detailed, evaluate_stsm, train_stsm, DistanceMode, ProblemInstance};
use stsm_synth::{presets, space_split, SplitAxis};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# Ablations beyond the paper (scale: {scale:?})\n");
    let dataset = apply_sensor_cap(presets::pems_bay(scale.days(), seed).generate(), scale);
    let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
    let name = dataset.name.clone();
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let base = scale.stsm_config(&name, seed);
    let mut payload = serde_json::Map::new();

    // 1. Pseudo-observations vs zero filling.
    println!("## Pseudo-observations (Eq. 3) vs zero fill\n");
    println!("| Input filling | RMSE | MAE | R2 |");
    println!("|---------------|------|-----|----|");
    for (label, pseudo) in [("pseudo-observations", true), ("zeros", false)] {
        let mut cfg = base.clone();
        cfg.pseudo_observations = pseudo;
        let (trained, _) = train_stsm(&problem, &cfg).expect("trains");
        let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
        println!(
            "| {label:<13} | {:.3} | {:.3} | {:.3} |",
            eval.metrics.rmse, eval.metrics.mae, eval.metrics.r2
        );
        payload.insert(
            format!("fill_{label}"),
            serde_json::to_value(eval.metrics).expect("serialize"),
        );
    }

    // 2. Temporal adjacency strength.
    println!("\n## Temporal adjacency A_dtw: in-links per unobserved location\n");
    println!("| q_ku | RMSE | R2 |");
    println!("|------|------|----|");
    for q_ku in [0usize, 1, 2, 3] {
        let mut cfg = base.clone();
        cfg.q_ku = q_ku;
        let (trained, _) = train_stsm(&problem, &cfg).expect("trains");
        let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
        println!("| {q_ku:>4} | {:.3} | {:.3} |", eval.metrics.rmse, eval.metrics.r2);
        payload
            .insert(format!("q_ku_{q_ku}"), serde_json::to_value(eval.metrics).expect("serialize"));
    }

    // 3. Error growth with forecast lead time.
    println!("\n## Per-horizon RMSE of the full model\n");
    let (trained, _) = train_stsm(&problem, &base).expect("trains");
    let detail = evaluate_detailed(&trained, &problem).expect("evaluates");
    println!("| horizon | RMSE |");
    println!("|---------|------|");
    for (h, rmse) in detail.horizon.rmse_curve().iter().enumerate() {
        println!("| t+{:<5} | {rmse:.3} |", h + 1);
    }
    payload.insert(
        "horizon_rmse".into(),
        serde_json::to_value(detail.horizon.rmse_curve()).expect("serialize"),
    );
    save_results("ablation", &serde_json::Value::Object(payload));
}
