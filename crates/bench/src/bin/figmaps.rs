//! Figs. 5, 6 and 11: sensor distributions and data partitioning, rendered
//! as ASCII maps (train = `o`, validation = `+`, test/unobserved = `x`).

use stsm_bench::{apply_sensor_cap, save_results, Scale};
use stsm_synth::{presets, ring_split, space_split, Dataset, SpaceSplit, SplitAxis};

fn ascii_map(dataset: &Dataset, split: &SpaceSplit, width: usize, height: usize) -> Vec<String> {
    let (mut min_x, mut min_y, mut max_x, mut max_y) =
        (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for c in &dataset.coords {
        min_x = min_x.min(c[0]);
        min_y = min_y.min(c[1]);
        max_x = max_x.max(c[0]);
        max_y = max_y.max(c[1]);
    }
    let sx = (max_x - min_x).max(1e-9);
    let sy = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    let mut plot = |ids: &[usize], ch: char| {
        for &i in ids {
            let c = dataset.coords[i];
            let gx = (((c[0] - min_x) / sx) * (width - 1) as f64).round() as usize;
            let gy = (((c[1] - min_y) / sy) * (height - 1) as f64).round() as usize;
            grid[height - 1 - gy][gx] = ch;
        }
    };
    plot(&split.train, 'o');
    plot(&split.val, '+');
    plot(&split.test, 'x');
    grid.into_iter().map(|row| row.into_iter().collect()).collect()
}

fn print_map(title: &str, dataset: &Dataset, split: &SpaceSplit) {
    println!("\n## {title} — split `{}`", split.label);
    println!(
        "train {} (o) | val {} (+) | unobserved {} (x)",
        split.train.len(),
        split.val.len(),
        split.test.len()
    );
    for line in ascii_map(dataset, split, 64, 20) {
        println!("  |{line}|");
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Figs. 5/6/11 — Sensor distributions and partitions (scale: {scale:?})");
    let mut payload = serde_json::Map::new();
    let datasets = [
        presets::pems_bay(days, seed),
        presets::pems_07(days, seed),
        presets::pems_08(400, days, seed),
        presets::melbourne(days, seed),
        presets::airq(days.max(6), seed),
    ];
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        let h = space_split(&dataset.coords, SplitAxis::Horizontal, false);
        print_map(&dataset.name, &dataset, &h);
        payload.insert(
            dataset.name.clone(),
            serde_json::json!({
                "sensors": dataset.n,
                "train": h.train.len(), "val": h.val.len(), "test": h.test.len(),
            }),
        );
        if dataset.name == "PEMS-Bay" {
            // Fig. 11: the ring split.
            let ring = ring_split(&dataset.coords);
            print_map("PEMS-Bay (Fig. 11 ring)", &dataset, &ring);
        }
    }
    save_results("figmaps", &serde_json::Value::Object(payload));
}
