//! Fig. 10: sensitivity to the sub-graph threshold ε_sg — RMSE of all four
//! main STSM variants as ε_sg varies (larger ε_sg = smaller sub-graphs).

use stsm_bench::{apply_sensor_cap, distance_mode_for, save_results, ModelId, Scale};
use stsm_core::{ProblemInstance, Variant};
use stsm_synth::{presets, space_split, SplitAxis};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    let days = scale.days();
    println!("# Fig. 10 — Sensitivity to eps_sg (scale: {scale:?})\n");
    let datasets = [presets::pems_bay(days, seed), presets::melbourne(days, seed)];
    let variants = [Variant::Stsm, Variant::StsmNc, Variant::StsmR, Variant::StsmRnc];
    let epsilons = [0.3f32, 0.4, 0.5, 0.6, 0.7];
    let mut payload = serde_json::Map::new();
    for cfg in datasets {
        let dataset = apply_sensor_cap(cfg.generate(), scale);
        println!("## {}\n", dataset.name);
        println!("| eps_sg | STSM | STSM-NC | STSM-R | STSM-RNC |");
        println!("|--------|------|---------|--------|----------|");
        let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
        let mut series = Vec::new();
        for &eps in &epsilons {
            let mut row = Vec::new();
            for &v in &variants {
                let model = ModelId::Stsm(v);
                let problem =
                    ProblemInstance::new(dataset.clone(), split.clone(), distance_mode_for(model));
                let mut stsm_cfg = scale.stsm_config(&dataset.name, seed).with_variant(v);
                stsm_cfg.epsilon_sg = eps;
                let (trained, _) = stsm_core::train_stsm(&problem, &stsm_cfg).expect("trains");
                let eval = stsm_core::evaluate_stsm(&trained, &problem).expect("evaluates");
                row.push(eval.metrics.rmse);
            }
            println!(
                "| {eps:>6.1} | {:>4.2} | {:>7.2} | {:>6.2} | {:>8.2} |",
                row[0], row[1], row[2], row[3]
            );
            series.push(serde_json::json!({
                "eps_sg": eps, "stsm": row[0], "stsm_nc": row[1],
                "stsm_r": row[2], "stsm_rnc": row[3],
            }));
        }
        println!();
        payload.insert(dataset.name.clone(), serde_json::Value::Array(series));
    }
    save_results("fig10", &serde_json::Value::Object(payload));
}
