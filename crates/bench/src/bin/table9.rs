//! Table 9: ring split on PEMS-Bay (Fig. 11) — centre observed for training,
//! middle ring for validation, outer region unobserved.

use stsm_bench::{
    apply_sensor_cap, improvement_vs_best_baseline, print_metrics_table,
    run_dataset_lineup_with_splits, save_results, ModelId, Scale,
};
use stsm_core::Variant;
use stsm_synth::{presets, ring_split};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# Table 9 — PEMS-Bay with a ring split (scale: {scale:?})");
    let dataset = apply_sensor_cap(presets::pems_bay(scale.days(), seed).generate(), scale);
    let splits = vec![ring_split(&dataset.coords)];
    let models = [ModelId::GeGan, ModelId::Ignnk, ModelId::Increase, ModelId::Stsm(Variant::Stsm)];
    let rows = run_dataset_lineup_with_splits(&dataset, &models, &splits, scale, seed);
    print_metrics_table("PEMS-Bay (ring split)", &rows);
    if let Some((rmse, mae, mape, r2)) = improvement_vs_best_baseline(&rows) {
        println!(
            "Improvement: RMSE {rmse:+.1}% | MAE {mae:+.1}% | MAPE {mape:+.1}% | R2 {}",
            if r2.is_nan() { "N/A".into() } else { format!("{r2:+.1}%") }
        );
    }
    save_results("table9", &serde_json::to_value(&rows).expect("serialize"));
}
