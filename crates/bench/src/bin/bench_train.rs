//! Measures training-step throughput and allocator traffic with the buffer
//! pool / fused kernels on vs off, and writes `BENCH_train.json` at the
//! repository root.
//!
//! The workload is a tensor-level GRU + Linear-head regression training loop
//! (forward, backward, clip, Adam) — the same op mix as STSM's temporal
//! module, without the graph machinery, so the allocation behaviour of the
//! autograd hot path dominates. Both modes run in one process via
//! `alloc::with_pool`, and the loss trajectories are asserted bitwise equal
//! before the report is written. Buffer requests are counted by the
//! `alloc-stats` feature, which this binary requires:
//!
//! ```bash
//! cargo run -p stsm-bench --release --features alloc-stats --bin bench_train
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;
use stsm_tensor::nn::{uniform, Fwd, GruCell, Linear};
use stsm_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use stsm_tensor::{alloc, pool, telemetry, ParamBinder, ParamStore, Tape};

const BATCH: usize = 16;
const T_IN: usize = 24;
const HIDDEN: usize = 32;
const T_OUT: usize = 12;

struct RunStats {
    losses: Vec<u32>,
    steps_per_sec: f64,
    fresh_per_step: f64,
    reused_per_step: f64,
}

/// Runs the full training loop with the pool forced on or off; returns the
/// per-step loss bits, throughput and per-step buffer-request counts.
fn run(pool_on: bool, warmup: usize, steps: usize) -> RunStats {
    alloc::with_pool(pool_on, || {
        // Start each mode from an empty pool so "off" cannot consume
        // buffers recycled by a previous "on" run.
        alloc::clear();
        let mut rng = StdRng::seed_from_u64(4242);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 1, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "head", HIDDEN, T_OUT, &mut rng);
        let x = uniform([BATCH, T_IN, 1], -1.0, 1.0, &mut rng);
        let y = uniform([BATCH, T_OUT], -1.0, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::with_capacity(warmup + steps);
        let step = |store: &mut ParamStore, opt: &mut Adam| {
            let (loss_v, mut grads) = {
                let tape = Tape::new();
                let mut binder = ParamBinder::new(&tape);
                let mut fwd = Fwd::new(store, &mut binder);
                let xv = tape.constant(x.clone());
                let h = gru.forward_seq(&mut fwd, xv);
                let p = head.forward(&mut fwd, h);
                let loss = tape.mse_loss(p, &y);
                tape.backward(loss);
                (tape.value(loss).item(), binder.grads())
            };
            clip_grad_norm(&mut grads, 5.0);
            opt.step(store, &grads);
            loss_v
        };
        for _ in 0..warmup {
            losses.push(step(&mut store, &mut opt).to_bits());
        }
        alloc::reset_alloc_counts();
        let t0 = Instant::now();
        for _ in 0..steps {
            losses.push(step(&mut store, &mut opt).to_bits());
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let (fresh, reused) = alloc::alloc_counts();
        RunStats {
            losses,
            steps_per_sec: steps as f64 / elapsed,
            fresh_per_step: fresh as f64 / steps as f64,
            reused_per_step: reused as f64 / steps as f64,
        }
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, steps) = if smoke { (1, 4) } else { (3, 30) };
    let threads = pool::num_threads();
    println!(
        "GRU({}->{}) + Linear({}->{}), batch {BATCH}, {steps} measured steps, \
         pool threads {threads}\n",
        1, HIDDEN, HIDDEN, T_OUT
    );
    stsm_bench::reset_peak_rss();
    let on = run(true, warmup, steps);
    let off = run(false, warmup, steps);
    let peak_rss = stsm_bench::peak_rss_bytes();
    assert_eq!(on.losses, off.losses, "pool on/off loss trajectories must be bitwise identical");
    for (label, r) in [("pool on ", &on), ("pool off", &off)] {
        println!(
            "{label}  {:>7.2} steps/s   fresh allocs/step {:>8.1}   pool reuses/step {:>8.1}",
            r.steps_per_sec, r.fresh_per_step, r.reused_per_step
        );
    }
    let report = json!({
        "workload": format!(
            "GRU(1->{HIDDEN}) + Linear({HIDDEN}->{T_OUT}), batch {BATCH}, T {T_IN}, \
             {steps} steps of forward/backward/clip/Adam"
        ),
        "threads": threads,
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "peak_rss_bytes": peak_rss,
        "note": "single-CPU container; steps/sec is indicative, allocations/step is exact. \
                 Loss trajectories asserted bitwise identical pool on vs off before writing.",
        "pool_on": {
            "steps_per_sec": on.steps_per_sec,
            "fresh_allocs_per_step": on.fresh_per_step,
            "pool_reuses_per_step": on.reused_per_step,
        },
        "pool_off": {
            "steps_per_sec": off.steps_per_sec,
            "fresh_allocs_per_step": off.fresh_per_step,
            "pool_reuses_per_step": off.reused_per_step,
        },
    });
    if smoke {
        println!("\nsmoke run: BENCH_train.json left untouched");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
            .expect("write BENCH_train.json");
        println!("\nwrote {path}");
    }

    // Cross-check the telemetry registry against the alloc-stats counters on
    // one more instrumented run, and show the kernel/phase span table.
    telemetry::with_telemetry(true, || {
        telemetry::reset();
        run(true, warmup, steps);
        let (fresh, reused) = alloc::alloc_counts();
        assert!(
            telemetry::counter_value("alloc.fresh") >= fresh
                && telemetry::counter_value("alloc.reused") >= reused,
            "telemetry alloc counters must see at least the alloc-stats traffic"
        );
        eprint!("\n{}", telemetry::snapshot().render_table());
    });
}
