//! Measures forward-only (inference) throughput and allocator traffic for
//! the two execution modes — a fresh Train-mode tape per window vs the
//! bind-once tape-free Infer session — and writes `BENCH_infer.json` at the
//! repository root.
//!
//! The workload is a tensor-level GRU + Linear-head forward over a stream of
//! windows — the same op mix as STSM's temporal module, without the graph
//! machinery — so the per-window autograd overhead (node boxing, grad slots,
//! leaf re-registration) is what the two modes differ by. The outputs of the
//! two modes are asserted bitwise equal before the report is written. Buffer
//! requests are counted by the `alloc-stats` feature, which this binary
//! requires:
//!
//! ```bash
//! cargo run -p stsm-bench --release --features alloc-stats --bin bench_infer
//! ```
//!
//! A per-dtype section additionally serves the same window stream from f32,
//! f16 and bf16 parameter storage (quantized via `ParamStore::to_dtype`,
//! f32 compute throughout) and reports bytes/window — the parameter bytes a
//! bound session keeps resident per served window stream — next to
//! windows/s (best-of-3). The f32 row is asserted bitwise identical to the
//! plain Infer run, so quantization support cannot perturb the f32 path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;
use stsm_tensor::nn::{uniform, Fwd, GruCell, Linear};
use stsm_tensor::{
    alloc, pool, telemetry, DType, InferSession, ParamBinder, ParamStore, Tape, Tensor,
};

const BATCH: usize = 16;
const T_IN: usize = 24;
const HIDDEN: usize = 32;
const T_OUT: usize = 12;
const WARMUP: usize = 3;

struct RunStats {
    outputs: Vec<u32>,
    windows_per_sec: f64,
    fresh_per_window: f64,
    reused_per_window: f64,
    /// Parameter storage bytes the bound session keeps resident (the
    /// bytes/window numerator of the per-dtype report).
    param_bytes: usize,
    /// f32 activation arena bytes after warmup (identical across dtypes —
    /// compute stays f32).
    arena_bytes: usize,
}

fn window_inputs(rng: &mut StdRng, windows: usize) -> Vec<Tensor> {
    (0..WARMUP + windows).map(|_| uniform([BATCH, T_IN, 1], -1.0, 1.0, rng)).collect()
}

/// Forward every window through a fresh Train-mode tape (the pre-refactor
/// evaluation path: new tape + binder + leaf re-registration per window).
fn run_train_mode(store: &ParamStore, gru: &GruCell, head: &Linear, xs: &[Tensor]) -> RunStats {
    alloc::clear();
    let mut outputs = Vec::new();
    let forward = |x: &Tensor, outputs: &mut Vec<u32>| {
        let tape = Tape::new();
        let mut binder = ParamBinder::new(&tape);
        let mut fwd = Fwd::new(store, &mut binder);
        let xv = fwd.constant(x.clone());
        let h = gru.forward_seq(&mut fwd, xv);
        let p = head.forward(&mut fwd, h);
        outputs.extend(tape.value(p).data().iter().map(|v| v.to_bits()));
    };
    for x in &xs[..WARMUP] {
        forward(x, &mut outputs);
    }
    outputs.clear();
    alloc::reset_alloc_counts();
    let t0 = Instant::now();
    for x in &xs[WARMUP..] {
        forward(x, &mut outputs);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let (fresh, reused) = alloc::alloc_counts();
    let windows = xs.len() - WARMUP;
    RunStats {
        outputs,
        windows_per_sec: windows as f64 / elapsed,
        fresh_per_window: fresh as f64 / windows as f64,
        reused_per_window: reused as f64 / windows as f64,
        param_bytes: store.storage_bytes(),
        arena_bytes: 0,
    }
}

/// Forward every window through one bind-once Infer session (the tape-free
/// evaluation path: parameters bound once, arena reset per window).
fn run_infer_mode(store: &ParamStore, gru: &GruCell, head: &Linear, xs: &[Tensor]) -> RunStats {
    alloc::clear();
    let mut outputs = Vec::new();
    let mut session = InferSession::new(store);
    let forward = |x: &Tensor, session: &mut InferSession, outputs: &mut Vec<u32>| {
        session.reset();
        let mut fwd = Fwd::infer(store, session);
        let xv = fwd.constant(x.clone());
        let h = gru.forward_seq(&mut fwd, xv);
        let p = head.forward(&mut fwd, h);
        outputs.extend(fwd.value(p).data().iter().map(|v| v.to_bits()));
    };
    for x in &xs[..WARMUP] {
        forward(x, &mut session, &mut outputs);
    }
    outputs.clear();
    alloc::reset_alloc_counts();
    let t0 = Instant::now();
    for x in &xs[WARMUP..] {
        forward(x, &mut session, &mut outputs);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let (fresh, reused) = alloc::alloc_counts();
    let windows = xs.len() - WARMUP;
    RunStats {
        outputs,
        windows_per_sec: windows as f64 / elapsed,
        fresh_per_window: fresh as f64 / windows as f64,
        reused_per_window: reused as f64 / windows as f64,
        param_bytes: session.param_bytes(),
        arena_bytes: session.arena_bytes(),
    }
}

/// Serves the window stream from `dt` parameter storage: quantizes the
/// store, runs `reps` full Infer-mode passes and keeps the fastest
/// (windows/s is noisy in a shared container; bytes are exact). Outputs are
/// asserted bitwise identical across repetitions — quantized inference is
/// deterministic.
fn run_dtype(
    dt: DType,
    store: &ParamStore,
    gru: &GruCell,
    head: &Linear,
    xs: &[Tensor],
    reps: usize,
) -> RunStats {
    let qstore = store.to_dtype(dt);
    let mut best: Option<RunStats> = None;
    for _ in 0..reps {
        let r = run_infer_mode(&qstore, gru, head, xs);
        if let Some(b) = &best {
            assert_eq!(r.outputs, b.outputs, "{dt}: repeated runs must be bitwise deterministic");
        }
        if best.as_ref().is_none_or(|b| r.windows_per_sec > b.windows_per_sec) {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let windows = if smoke { 5 } else { 50 };
    let threads = pool::num_threads();
    println!(
        "GRU(1->{HIDDEN}) + Linear({HIDDEN}->{T_OUT}), batch {BATCH}, {windows} measured \
         forward-only windows, pool threads {threads}\n"
    );
    let mut rng = StdRng::seed_from_u64(2424);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 1, HIDDEN, &mut rng);
    let head = Linear::new(&mut store, "head", HIDDEN, T_OUT, &mut rng);
    let xs = window_inputs(&mut rng, windows);
    stsm_bench::reset_peak_rss();
    let train = run_train_mode(&store, &gru, &head, &xs);
    let infer = run_infer_mode(&store, &gru, &head, &xs);
    let peak_rss = stsm_bench::peak_rss_bytes();
    assert_eq!(
        train.outputs, infer.outputs,
        "Train and Infer forward outputs must be bitwise identical"
    );
    for (label, r) in [("train mode", &train), ("infer mode", &infer)] {
        println!(
            "{label}  {:>8.2} windows/s   fresh allocs/window {:>8.1}   pool reuses/window {:>8.1}",
            r.windows_per_sec, r.fresh_per_window, r.reused_per_window
        );
    }

    // Per-dtype serving: same stream, narrower parameter storage.
    println!();
    let reps = if smoke { 1 } else { 3 };
    let f32_run = run_dtype(DType::F32, &store, &gru, &head, &xs, reps);
    assert_eq!(
        f32_run.outputs, infer.outputs,
        "f32 dtype row must be bitwise identical to the plain Infer run"
    );
    let mut dtype_rows = serde_json::Map::new();
    for dt in [DType::F32, DType::F16, DType::Bf16] {
        let half_run;
        let r = if dt == DType::F32 {
            &f32_run
        } else {
            half_run = run_dtype(dt, &store, &gru, &head, &xs, reps);
            &half_run
        };
        let bytes_per_window = r.param_bytes as f64;
        let wps_ratio = r.windows_per_sec / f32_run.windows_per_sec;
        let bpw_ratio = bytes_per_window / f32_run.param_bytes as f64;
        println!(
            "{:<5} storage  {:>8.2} windows/s ({wps_ratio:>5.2}x f32)   bytes/window {:>7.0} \
             ({bpw_ratio:>5.2}x f32)   arena bytes {:>8}",
            dt.name(),
            r.windows_per_sec,
            bytes_per_window,
            r.arena_bytes,
        );
        dtype_rows.insert(
            dt.name().to_string(),
            json!({
                "windows_per_sec": r.windows_per_sec,
                "windows_per_sec_vs_f32": wps_ratio,
                "param_bytes": r.param_bytes,
                "bytes_per_window": bytes_per_window,
                "bytes_per_window_vs_f32": bpw_ratio,
                "arena_bytes": r.arena_bytes,
            }),
        );
    }
    let dtype_rows = serde_json::Value::Object(dtype_rows);
    let report = json!({
        "workload": format!(
            "GRU(1->{HIDDEN}) + Linear({HIDDEN}->{T_OUT}), batch {BATCH}, T {T_IN}, \
             {windows} forward-only windows"
        ),
        "threads": threads,
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "peak_rss_bytes": peak_rss,
        "note": "single-CPU container; windows/sec is indicative, allocations/window is exact. \
                 Outputs asserted bitwise identical Train vs Infer before writing. Train mode \
                 builds a fresh tape + binder per window; Infer mode binds parameters once and \
                 resets the session arena per window.",
        "train_mode": {
            "windows_per_sec": train.windows_per_sec,
            "fresh_allocs_per_window": train.fresh_per_window,
            "pool_reuses_per_window": train.reused_per_window,
        },
        "infer_mode": {
            "windows_per_sec": infer.windows_per_sec,
            "fresh_allocs_per_window": infer.fresh_per_window,
            "pool_reuses_per_window": infer.reused_per_window,
        },
        "dtypes_note": "Per-dtype Infer-mode serving of the same stream. bytes/window = parameter \
                        storage bytes the bound session keeps resident per served window stream \
                        (16-bit dtypes store half the bytes; compute and activations stay f32 — \
                        arena_bytes reports those separately and is dtype-independent). \
                        windows/s is best-of-3; the f32 row is asserted bitwise identical to \
                        infer_mode before writing.",
        "dtypes": dtype_rows,
    });
    if smoke {
        println!("\nsmoke run: BENCH_infer.json left untouched");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
            .expect("write BENCH_infer.json");
        println!("\nwrote {path}");
    }

    // One more instrumented Infer-mode pass: the session counters and kernel
    // span totals land in the telemetry table (stderr).
    telemetry::with_telemetry(true, || {
        telemetry::reset();
        run_infer_mode(&store, &gru, &head, &xs);
        assert!(
            telemetry::counter_value("infer.session.new") >= 1,
            "instrumented run must register the Infer session"
        );
        eprint!("\n{}", telemetry::snapshot().render_table());
    });
}
