//! Measures forward-only (inference) throughput and allocator traffic for
//! the two execution modes — a fresh Train-mode tape per window vs the
//! bind-once tape-free Infer session — and writes `BENCH_infer.json` at the
//! repository root.
//!
//! The workload is a tensor-level GRU + Linear-head forward over a stream of
//! windows — the same op mix as STSM's temporal module, without the graph
//! machinery — so the per-window autograd overhead (node boxing, grad slots,
//! leaf re-registration) is what the two modes differ by. The outputs of the
//! two modes are asserted bitwise equal before the report is written. Buffer
//! requests are counted by the `alloc-stats` feature, which this binary
//! requires:
//!
//! ```bash
//! cargo run -p stsm-bench --release --features alloc-stats --bin bench_infer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;
use stsm_tensor::nn::{uniform, Fwd, GruCell, Linear};
use stsm_tensor::{alloc, pool, telemetry, InferSession, ParamBinder, ParamStore, Tape, Tensor};

const BATCH: usize = 16;
const T_IN: usize = 24;
const HIDDEN: usize = 32;
const T_OUT: usize = 12;
const WARMUP: usize = 3;

struct RunStats {
    outputs: Vec<u32>,
    windows_per_sec: f64,
    fresh_per_window: f64,
    reused_per_window: f64,
}

fn window_inputs(rng: &mut StdRng, windows: usize) -> Vec<Tensor> {
    (0..WARMUP + windows).map(|_| uniform([BATCH, T_IN, 1], -1.0, 1.0, rng)).collect()
}

/// Forward every window through a fresh Train-mode tape (the pre-refactor
/// evaluation path: new tape + binder + leaf re-registration per window).
fn run_train_mode(store: &ParamStore, gru: &GruCell, head: &Linear, xs: &[Tensor]) -> RunStats {
    alloc::clear();
    let mut outputs = Vec::new();
    let forward = |x: &Tensor, outputs: &mut Vec<u32>| {
        let tape = Tape::new();
        let mut binder = ParamBinder::new(&tape);
        let mut fwd = Fwd::new(store, &mut binder);
        let xv = fwd.constant(x.clone());
        let h = gru.forward_seq(&mut fwd, xv);
        let p = head.forward(&mut fwd, h);
        outputs.extend(tape.value(p).data().iter().map(|v| v.to_bits()));
    };
    for x in &xs[..WARMUP] {
        forward(x, &mut outputs);
    }
    outputs.clear();
    alloc::reset_alloc_counts();
    let t0 = Instant::now();
    for x in &xs[WARMUP..] {
        forward(x, &mut outputs);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let (fresh, reused) = alloc::alloc_counts();
    let windows = xs.len() - WARMUP;
    RunStats {
        outputs,
        windows_per_sec: windows as f64 / elapsed,
        fresh_per_window: fresh as f64 / windows as f64,
        reused_per_window: reused as f64 / windows as f64,
    }
}

/// Forward every window through one bind-once Infer session (the tape-free
/// evaluation path: parameters bound once, arena reset per window).
fn run_infer_mode(store: &ParamStore, gru: &GruCell, head: &Linear, xs: &[Tensor]) -> RunStats {
    alloc::clear();
    let mut outputs = Vec::new();
    let mut session = InferSession::new(store);
    let forward = |x: &Tensor, session: &mut InferSession, outputs: &mut Vec<u32>| {
        session.reset();
        let mut fwd = Fwd::infer(store, session);
        let xv = fwd.constant(x.clone());
        let h = gru.forward_seq(&mut fwd, xv);
        let p = head.forward(&mut fwd, h);
        outputs.extend(fwd.value(p).data().iter().map(|v| v.to_bits()));
    };
    for x in &xs[..WARMUP] {
        forward(x, &mut session, &mut outputs);
    }
    outputs.clear();
    alloc::reset_alloc_counts();
    let t0 = Instant::now();
    for x in &xs[WARMUP..] {
        forward(x, &mut session, &mut outputs);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let (fresh, reused) = alloc::alloc_counts();
    let windows = xs.len() - WARMUP;
    RunStats {
        outputs,
        windows_per_sec: windows as f64 / elapsed,
        fresh_per_window: fresh as f64 / windows as f64,
        reused_per_window: reused as f64 / windows as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let windows = if smoke { 5 } else { 50 };
    let threads = pool::num_threads();
    println!(
        "GRU(1->{HIDDEN}) + Linear({HIDDEN}->{T_OUT}), batch {BATCH}, {windows} measured \
         forward-only windows, pool threads {threads}\n"
    );
    let mut rng = StdRng::seed_from_u64(2424);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 1, HIDDEN, &mut rng);
    let head = Linear::new(&mut store, "head", HIDDEN, T_OUT, &mut rng);
    let xs = window_inputs(&mut rng, windows);
    stsm_bench::reset_peak_rss();
    let train = run_train_mode(&store, &gru, &head, &xs);
    let infer = run_infer_mode(&store, &gru, &head, &xs);
    let peak_rss = stsm_bench::peak_rss_bytes();
    assert_eq!(
        train.outputs, infer.outputs,
        "Train and Infer forward outputs must be bitwise identical"
    );
    for (label, r) in [("train mode", &train), ("infer mode", &infer)] {
        println!(
            "{label}  {:>8.2} windows/s   fresh allocs/window {:>8.1}   pool reuses/window {:>8.1}",
            r.windows_per_sec, r.fresh_per_window, r.reused_per_window
        );
    }
    let report = json!({
        "workload": format!(
            "GRU(1->{HIDDEN}) + Linear({HIDDEN}->{T_OUT}), batch {BATCH}, T {T_IN}, \
             {windows} forward-only windows"
        ),
        "threads": threads,
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "peak_rss_bytes": peak_rss,
        "note": "single-CPU container; windows/sec is indicative, allocations/window is exact. \
                 Outputs asserted bitwise identical Train vs Infer before writing. Train mode \
                 builds a fresh tape + binder per window; Infer mode binds parameters once and \
                 resets the session arena per window.",
        "train_mode": {
            "windows_per_sec": train.windows_per_sec,
            "fresh_allocs_per_window": train.fresh_per_window,
            "pool_reuses_per_window": train.reused_per_window,
        },
        "infer_mode": {
            "windows_per_sec": infer.windows_per_sec,
            "fresh_allocs_per_window": infer.fresh_per_window,
            "pool_reuses_per_window": infer.reused_per_window,
        },
    });
    if smoke {
        println!("\nsmoke run: BENCH_infer.json left untouched");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize report"))
            .expect("write BENCH_infer.json");
        println!("\nwrote {path}");
    }

    // One more instrumented Infer-mode pass: the session counters and kernel
    // span totals land in the telemetry table (stderr).
    telemetry::with_telemetry(true, || {
        telemetry::reset();
        run_infer_mode(&store, &gru, &head, &xs);
        assert!(
            telemetry::counter_value("infer.session.new") >= 1,
            "instrumented run must register the Infer session"
        );
        eprint!("\n{}", telemetry::snapshot().render_table());
    });
}
