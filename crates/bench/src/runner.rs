//! Experiment runner: trains/evaluates any model (the three baselines or any
//! STSM variant) on a problem instance and aggregates rows across splits.

use crate::scale::Scale;
use serde::{Deserialize, Serialize};
use stsm_baselines::{run_gegan, run_ignnk, run_increase};
use stsm_core::{evaluate_stsm, train_stsm, DistanceMode, ProblemInstance, Variant};
use stsm_synth::{four_standard_splits, Dataset, SpaceSplit};
use stsm_timeseries::Metrics;

/// Any model that can be run through the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelId {
    /// GE-GAN baseline.
    GeGan,
    /// IGNNK baseline.
    Ignnk,
    /// INCREASE baseline.
    Increase,
    /// An STSM variant.
    Stsm(Variant),
}

impl ModelId {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::GeGan => "GE-GAN",
            ModelId::Ignnk => "IGNNK",
            ModelId::Increase => "INCREASE",
            ModelId::Stsm(v) => v.name(),
        }
    }

    /// The Table 4 column order: three baselines then the four main variants.
    pub fn table4_lineup() -> Vec<ModelId> {
        vec![
            ModelId::GeGan,
            ModelId::Ignnk,
            ModelId::Increase,
            ModelId::Stsm(Variant::StsmRnc),
            ModelId::Stsm(Variant::StsmNc),
            ModelId::Stsm(Variant::StsmR),
            ModelId::Stsm(Variant::Stsm),
        ]
    }
}

/// One model × one problem result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Model name.
    pub model: String,
    /// Accuracy metrics.
    pub metrics: Metrics,
    /// Training wall-clock seconds.
    pub train_seconds: f64,
    /// Inference wall-clock seconds.
    pub test_seconds: f64,
    /// Mean masked-location similarity (STSM variants only; Table 8).
    pub masked_similarity: Option<f32>,
    /// Random-masking reference similarity (Table 8 denominator).
    pub random_similarity: Option<f32>,
}

/// Runs one model on one prepared problem.
pub fn run_model(problem: &ProblemInstance, model: ModelId, scale: Scale, seed: u64) -> RunResult {
    match model {
        ModelId::GeGan => {
            let r = run_gegan(problem, &scale.baseline_config(seed));
            baseline_result(r)
        }
        ModelId::Ignnk => {
            let r = run_ignnk(problem, &scale.baseline_config(seed));
            baseline_result(r)
        }
        ModelId::Increase => {
            let r = run_increase(problem, &scale.baseline_config(seed));
            baseline_result(r)
        }
        ModelId::Stsm(v) => {
            let cfg = scale.stsm_config(&problem.dataset.name, seed).with_variant(v);
            let (trained, report) = train_stsm(problem, &cfg).expect("trains");
            let eval = evaluate_stsm(&trained, problem).expect("evaluates");
            RunResult {
                model: v.name().to_string(),
                metrics: eval.metrics,
                train_seconds: report.train_seconds,
                test_seconds: eval.test_seconds,
                masked_similarity: Some(report.mean_masked_similarity),
                random_similarity: Some(report.mean_random_similarity),
            }
        }
    }
}

fn baseline_result(r: stsm_baselines::BaselineReport) -> RunResult {
    RunResult {
        model: r.name.to_string(),
        metrics: r.metrics,
        train_seconds: r.train_seconds,
        test_seconds: r.test_seconds,
        masked_similarity: None,
        random_similarity: None,
    }
}

/// The distance mode an STSM variant implies (baselines always Euclidean).
pub fn distance_mode_for(model: ModelId) -> DistanceMode {
    match model {
        ModelId::Stsm(Variant::StsmRdA) => DistanceMode::RoadAll,
        ModelId::Stsm(Variant::StsmRdM) => DistanceMode::RoadMatricesOnly,
        _ => DistanceMode::Euclidean,
    }
}

/// Applies the smoke-scale sensor cap (keeps a spatially contiguous prefix by
/// x coordinate so splits still make sense).
pub fn apply_sensor_cap(dataset: Dataset, scale: Scale) -> Dataset {
    match scale.sensor_cap() {
        Some(cap) if dataset.n > cap => {
            let mut order: Vec<usize> = (0..dataset.n).collect();
            order.sort_by(|&a, &b| {
                dataset.coords[a][0].partial_cmp(&dataset.coords[b][0]).expect("finite")
            });
            order.truncate(cap);
            order.sort_unstable();
            dataset.subset(&order)
        }
        _ => dataset,
    }
}

/// Runs a lineup of models on a dataset, averaging over `scale.splits()` of
/// the four standard splits. Returns one averaged [`RunResult`] per model.
pub fn run_dataset_lineup(
    dataset: &Dataset,
    models: &[ModelId],
    scale: Scale,
    seed: u64,
) -> Vec<RunResult> {
    let mut splits = four_standard_splits(&dataset.coords);
    splits.truncate(scale.splits().max(1));
    run_dataset_lineup_with_splits(dataset, models, &splits, scale, seed)
}

/// Like [`run_dataset_lineup`] with explicit splits (ring split, ratio
/// sweeps, ...).
pub fn run_dataset_lineup_with_splits(
    dataset: &Dataset,
    models: &[ModelId],
    splits: &[SpaceSplit],
    scale: Scale,
    seed: u64,
) -> Vec<RunResult> {
    let mut out: Vec<RunResult> = Vec::with_capacity(models.len());
    for &model in models {
        let mut per_split: Vec<RunResult> = Vec::with_capacity(splits.len());
        // Problems may differ per model only through the distance mode.
        for split in splits {
            let problem =
                ProblemInstance::new(dataset.clone(), split.clone(), distance_mode_for(model));
            per_split.push(run_model(&problem, model, scale, seed));
        }
        out.push(average_results(&per_split));
    }
    out
}

/// Averages results across splits (metrics averaged; times summed per the
/// paper's "total training time" reporting, then divided by split count).
pub fn average_results(results: &[RunResult]) -> RunResult {
    assert!(!results.is_empty());
    let n = results.len() as f64;
    let metrics = Metrics::average(&results.iter().map(|r| r.metrics).collect::<Vec<_>>());
    let avg_opt = |f: fn(&RunResult) -> Option<f32>| -> Option<f32> {
        let vals: Vec<f32> = results.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f32>() / vals.len() as f32)
        }
    };
    RunResult {
        model: results[0].model.clone(),
        metrics,
        train_seconds: results.iter().map(|r| r.train_seconds).sum::<f64>() / n,
        test_seconds: results.iter().map(|r| r.test_seconds).sum::<f64>() / n,
        masked_similarity: avg_opt(|r| r.masked_similarity),
        random_similarity: avg_opt(|r| r.random_similarity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_names() {
        let lineup = ModelId::table4_lineup();
        assert_eq!(lineup.len(), 7);
        assert_eq!(lineup[0].name(), "GE-GAN");
        assert_eq!(lineup[6].name(), "STSM");
    }

    #[test]
    fn averaging_results() {
        let mk = |rmse: f64, t: f64| RunResult {
            model: "X".into(),
            metrics: Metrics { rmse, mae: rmse / 2.0, mape: 0.1, r2: 0.0 },
            train_seconds: t,
            test_seconds: 1.0,
            masked_similarity: Some(0.5),
            random_similarity: None,
        };
        let avg = average_results(&[mk(2.0, 10.0), mk(4.0, 20.0)]);
        assert_eq!(avg.metrics.rmse, 3.0);
        assert_eq!(avg.train_seconds, 15.0);
        assert_eq!(avg.masked_similarity, Some(0.5));
        assert_eq!(avg.random_similarity, None);
    }

    #[test]
    fn distance_modes() {
        assert_eq!(distance_mode_for(ModelId::Increase), DistanceMode::Euclidean);
        assert_eq!(distance_mode_for(ModelId::Stsm(Variant::StsmRdA)), DistanceMode::RoadAll);
    }
}
