//! Experiment scales. The paper trained on a V100 over months-long datasets;
//! this reproduction runs on CPU, so each experiment binary supports three
//! scales selected by the `STSM_SCALE` environment variable:
//!
//! * `smoke` — seconds per run; for CI and tests (tiny subsets);
//! * `quick` — the default; minutes per table, preserves the paper's sensor
//!   counts and mechanism but shortens horizons and training;
//! * `full`  — hours; closest to the paper's protocol (4 splits, longer
//!   windows and training).

use stsm_baselines::BaselineConfig;
use stsm_core::StsmConfig;

/// Scale of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: for CI.
    Smoke,
    /// Default: minutes per table.
    Quick,
    /// Paper-protocol-like: hours.
    Full,
}

impl Scale {
    /// Reads `STSM_SCALE` (smoke|quick|full), defaulting to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("STSM_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Simulated days of data per dataset.
    pub fn days(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 8,
            Scale::Full => 14,
        }
    }

    /// Number of space splits averaged per dataset (the paper uses 4).
    pub fn splits(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 1,
            Scale::Full => 4,
        }
    }

    /// Caps the number of sensors (smoke only) to keep runs tiny.
    pub fn sensor_cap(&self) -> Option<usize> {
        match self {
            Scale::Smoke => Some(40),
            _ => None,
        }
    }

    /// Window length `T = T'` in steps.
    pub fn window(&self) -> usize {
        match self {
            Scale::Smoke => 6,
            Scale::Quick => 8,
            Scale::Full => 12,
        }
    }

    /// STSM configuration at this scale for a dataset (applies Table 3
    /// hyper-parameters on top).
    pub fn stsm_config(&self, dataset_name: &str, seed: u64) -> StsmConfig {
        let t = self.window();
        let base = match self {
            Scale::Smoke => StsmConfig {
                t_in: t,
                t_out: t,
                hidden: 8,
                blocks: 1,
                gcn_depth: 2,
                epochs: 2,
                windows_per_epoch: 6,
                batch_windows: 3,
                ..Default::default()
            },
            Scale::Quick => StsmConfig {
                t_in: t,
                t_out: t,
                hidden: 16,
                blocks: 2,
                gcn_depth: 2,
                epochs: 8,
                windows_per_epoch: 24,
                batch_windows: 4,
                ..Default::default()
            },
            Scale::Full => StsmConfig {
                t_in: t,
                t_out: t,
                hidden: 16,
                blocks: 2,
                gcn_depth: 2,
                epochs: 10,
                windows_per_epoch: 24,
                batch_windows: 4,
                ..Default::default()
            },
        };
        let mut cfg = base.for_dataset(dataset_name);
        cfg.seed = seed;
        // Smoke runs cap top_k to the tiny sensor counts.
        if *self == Scale::Smoke {
            cfg.top_k = cfg.top_k.min(12);
        }
        cfg
    }

    /// Baseline configuration at this scale.
    pub fn baseline_config(&self, seed: u64) -> BaselineConfig {
        let t = self.window();
        let mut cfg = match self {
            Scale::Smoke => BaselineConfig {
                t_in: t,
                t_out: t,
                hidden: 8,
                epochs: 2,
                windows_per_epoch: 6,
                ..Default::default()
            },
            Scale::Quick => BaselineConfig {
                t_in: t,
                t_out: t,
                hidden: 16,
                epochs: 8,
                windows_per_epoch: 24,
                ..Default::default()
            },
            Scale::Full => BaselineConfig {
                t_in: t,
                t_out: t,
                hidden: 16,
                epochs: 10,
                windows_per_epoch: 24,
                ..Default::default()
            },
        };
        cfg.seed = seed;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.days() < Scale::Quick.days());
        assert!(Scale::Quick.days() < Scale::Full.days());
        assert!(Scale::Full.splits() == 4);
        assert!(Scale::Smoke.sensor_cap().is_some());
        assert!(Scale::Quick.sensor_cap().is_none());
    }

    #[test]
    fn configs_apply_table3() {
        let c = Scale::Quick.stsm_config("PEMS-Bay", 7);
        assert_eq!(c.lambda, 0.01);
        assert_eq!(c.seed, 7);
        assert_eq!(c.t_in, c.t_out);
        c.validate();
    }
}
