//! # stsm-bench
//!
//! The experiment harness reproducing every table and figure of the STSM
//! paper's evaluation (§5). Each `src/bin/*` binary regenerates one paper
//! artefact (Table 4–11, Fig. 7–11) at a scale selected via `STSM_SCALE`
//! (`smoke` | `quick` | `full`); `all_experiments` runs the whole set and
//! emits the rows recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod rss;
pub mod runner;
pub mod scale;
pub mod table;

pub use rss::{peak_rss_bytes, reset_peak_rss};
pub use runner::{
    apply_sensor_cap, average_results, distance_mode_for, run_dataset_lineup,
    run_dataset_lineup_with_splits, run_model, ModelId, RunResult,
};
pub use scale::Scale;
pub use table::{
    improvement_vs_best_baseline, print_metrics_table, print_timing_table, save_results,
};
