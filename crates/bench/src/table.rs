//! Table rendering and result persistence. Every experiment binary prints a
//! markdown table shaped like the paper's and appends a JSON record under
//! `results/`.

use crate::runner::RunResult;
use std::io::Write;
use std::path::Path;

/// Formats one metrics row: model, RMSE, MAE, MAPE, R².
pub fn metrics_row(r: &RunResult) -> String {
    format!(
        "| {:<12} | {:>8.3} | {:>8.3} | {:>7.3} | {:>8.3} |",
        r.model, r.metrics.rmse, r.metrics.mae, r.metrics.mape, r.metrics.r2
    )
}

/// Prints a paper-style metrics table for one dataset.
pub fn print_metrics_table(title: &str, rows: &[RunResult]) {
    println!("\n### {title}\n");
    println!("| Model        |    RMSE↓ |     MAE↓ |  MAPE↓ |     R2↑  |");
    println!("|--------------|----------|----------|--------|----------|");
    for r in rows {
        println!("{}", metrics_row(r));
    }
    // Best-of annotations like the paper's bold/underline markers.
    if let Some(best) =
        rows.iter().min_by(|a, b| a.metrics.rmse.partial_cmp(&b.metrics.rmse).expect("finite"))
    {
        println!("\nBest RMSE: **{}** ({:.3})", best.model, best.metrics.rmse);
    }
}

/// Prints a Table 5-style timing table.
pub fn print_timing_table(title: &str, datasets: &[(&str, Vec<RunResult>)]) {
    println!("\n### {title}\n");
    print!("| Model        | Time      |");
    for (name, _) in datasets {
        print!(" {name:>9} |");
    }
    println!();
    print!("|--------------|-----------|");
    for _ in datasets {
        print!("-----------|");
    }
    println!();
    let models: Vec<String> = datasets[0].1.iter().map(|r| r.model.clone()).collect();
    for (mi, model) in models.iter().enumerate() {
        print!("| {model:<12} | Train (s) |");
        for (_, rows) in datasets {
            print!(" {:>9.1} |", rows[mi].train_seconds);
        }
        println!();
        print!("| {:<12} | Test (s)  |", "");
        for (_, rows) in datasets {
            print!(" {:>9.2} |", rows[mi].test_seconds);
        }
        println!();
    }
}

/// Computes the paper's "Improvement" row: error reduction of the best STSM
/// variant relative to the best baseline (positive = STSM better).
pub fn improvement_vs_best_baseline(rows: &[RunResult]) -> Option<(f64, f64, f64, f64)> {
    let is_stsm = |r: &RunResult| r.model.starts_with("STSM");
    let best = |ours: bool, f: fn(&RunResult) -> f64, lower_better: bool| -> Option<f64> {
        rows.iter()
            .filter(|r| is_stsm(r) == ours)
            .map(f)
            .filter(|v| v.is_finite())
            .reduce(|a, b| if lower_better == (a < b) { a } else { b })
    };
    let imp_lower = |f: fn(&RunResult) -> f64| -> Option<f64> {
        let base = best(false, f, true)?;
        let ours = best(true, f, true)?;
        Some((base - ours) / base * 100.0)
    };
    let imp_r2 = {
        let base = best(false, |r| r.metrics.r2, false)?;
        let ours = best(true, |r| r.metrics.r2, false)?;
        if base.abs() < 1e-12 || base < 0.0 {
            f64::NAN // N/A per the paper when baselines have negative R².
        } else {
            (ours - base) / base * 100.0
        }
    };
    Some((
        imp_lower(|r| r.metrics.rmse)?,
        imp_lower(|r| r.metrics.mae)?,
        imp_lower(|r| r.metrics.mape)?,
        imp_r2,
    ))
}

/// Appends a JSON record of an experiment to `results/<id>.json`.
pub fn save_results(experiment_id: &str, payload: &serde_json::Value) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/ directory; skipping save");
        return;
    }
    let path = dir.join(format!("{experiment_id}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(payload).expect("serialize"));
            println!("\n[saved {}]", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsm_timeseries::Metrics;

    fn r(model: &str, rmse: f64, r2: f64) -> RunResult {
        RunResult {
            model: model.into(),
            metrics: Metrics { rmse, mae: rmse * 0.6, mape: 0.1, r2 },
            train_seconds: 1.0,
            test_seconds: 0.1,
            masked_similarity: None,
            random_similarity: None,
        }
    }

    #[test]
    fn improvement_positive_when_stsm_wins() {
        let rows = vec![r("INCREASE", 10.0, 0.1), r("STSM", 9.0, 0.2)];
        let (rmse, mae, _mape, r2) = improvement_vs_best_baseline(&rows).unwrap();
        assert!((rmse - 10.0).abs() < 1e-9);
        assert!(mae > 0.0);
        assert!((r2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_r2_nan_when_baselines_negative() {
        let rows = vec![r("IGNNK", 10.0, -0.5), r("STSM", 9.0, 0.2)];
        let (_, _, _, r2) = improvement_vs_best_baseline(&rows).unwrap();
        assert!(r2.is_nan(), "negative baseline R² must yield N/A");
    }

    #[test]
    fn rows_render() {
        let row = metrics_row(&r("STSM", 8.61, 0.23));
        assert!(row.contains("STSM"));
        assert!(row.contains("8.610"));
    }
}
