//! Peak resident-set-size measurement for benchmark reports.
//!
//! Linux exposes the process's high-water mark as `VmHWM` in
//! `/proc/self/status`, and writing `"5"` to `/proc/self/clear_refs`
//! resets the watermark to the *current* RSS — so a reset immediately
//! before a phase followed by a read immediately after bounds that phase's
//! peak memory. Both calls degrade gracefully (`None` / `false`) on other
//! platforms or in sandboxes that hide procfs.

/// Peak resident set size in bytes (`VmHWM`) since process start or the
/// last successful [`reset_peak_rss`]. `None` off Linux or when procfs is
/// unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Resets the peak-RSS watermark to the current RSS so the next
/// [`peak_rss_bytes`] covers only the work done in between. Returns whether
/// the reset took effect (always `false` off Linux).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // Any live process maps at least a few hundred KiB.
            assert!(bytes > 100 * 1024, "implausible VmHWM: {bytes}");
        }
    }

    #[test]
    fn reset_then_allocate_moves_watermark() {
        if !reset_peak_rss() {
            return; // unsupported platform/sandbox: nothing to check
        }
        let before = peak_rss_bytes();
        // Touch a buffer noticeably larger than the page cache noise floor.
        let mut big = vec![0u8; 64 << 20];
        for i in (0..big.len()).step_by(4096) {
            big[i] = i as u8;
        }
        let after = peak_rss_bytes();
        std::hint::black_box(&big);
        if let (Some(b), Some(a)) = (before, after) {
            assert!(a >= b, "watermark went backwards: {b} -> {a}");
            assert!(a - b > 32 << 20, "64MiB touch must raise the watermark, got {}", a - b);
        }
    }
}
