//! Dynamic time warping (Berndt & Clifford, 1994) — the temporal-similarity
//! measure behind the paper's `A_dtw` adjacency (§3.4.1, following STFGNN).
//!
//! Both the exact O(T₁T₂) recurrence and a Sakoe–Chiba banded variant are
//! provided; the band makes the all-pairs computation over ~1000 sensors
//! tractable on daily profiles, and the all-pairs/cross products run on the
//! shared worker pool ([`stsm_tensor::pool`]).

use stsm_tensor::pool;

/// Exact DTW distance between two series with absolute-difference local cost.
pub fn dtw(a: &[f32], b: &[f32]) -> f32 {
    dtw_banded(a, b, usize::MAX)
}

/// DTW restricted to a Sakoe–Chiba band of half-width `band` around the
/// diagonal (`usize::MAX` = unconstrained). Distance is the sum of
/// `|a[i] - b[j]|` along the optimal monotone alignment.
pub fn dtw_banded(a: &[f32], b: &[f32], band: usize) -> f32 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f32::INFINITY };
    }
    // Effective band must at least cover the length difference, or no
    // complete warping path exists.
    let band = band.max(n.abs_diff(m));
    let inf = f32::INFINITY;
    // Rolling rows of the DP table; row i covers j in [lo, hi).
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        // Sakoe–Chiba: |i - j| <= band (1-based indices on both axes).
        let lo = i.saturating_sub(band).max(1);
        let hi = i.saturating_add(band).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// [`dtw_banded`] with early abandonment for the pruning cascade: returns
/// `None` as soon as some DP row's minimum exceeds `cut`. Every complete
/// warping path passes through at least one cell of every row, and a cell's
/// DP value lower-bounds any path through it, so a row whose minimum beats
/// the cut proves the final distance would too. The recurrence, iteration
/// order and arithmetic are identical to [`dtw_banded`], so a `Some`
/// result is bitwise equal to the unabandoned distance (`cut = ∞` never
/// abandons).
pub(crate) fn dtw_banded_abandon(a: &[f32], b: &[f32], band: usize, cut: f32) -> Option<f32> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { Some(0.0) } else { Some(f32::INFINITY) };
    }
    let band = band.max(n.abs_diff(m));
    let inf = f32::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let lo = i.saturating_sub(band).max(1);
        let hi = i.saturating_add(band).min(m);
        let mut row_min = inf;
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
            row_min = row_min.min(curr[j]);
        }
        if row_min > cut {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    Some(prev[m])
}

/// Converts a DTW distance into a similarity in (0, 1]: `exp(-d / scale)`.
pub fn dtw_similarity(d: f32, scale: f32) -> f32 {
    (-d / scale.max(1e-12)).exp()
}

/// Approximate DP cells per banded DTW call, used to weight pool dispatch:
/// each of ~`t` rows fills ~`2·band + 1` cells. `t` is the *mean* length of
/// every series involved in the call — weighting by only the first series'
/// length mis-sized chunks for ragged inputs and for [`dtw_cross`], whose
/// `from`/`to` sets can have very different lengths.
fn dtw_work_estimate<'a>(series: impl Iterator<Item = &'a Vec<f32>>, band: usize) -> usize {
    let (mut total, mut count) = (0usize, 0usize);
    for s in series {
        total += s.len();
        count += 1;
    }
    let t = (total / count.max(1)).max(1);
    t * (2 * band.min(t) + 1)
}

/// Maps a flat index into the strict upper triangle of an `n × n` matrix
/// (row-major pair order: `(0,1), (0,2), …, (0,n-1), (1,2), …`) back to its
/// `(i, j)` pair. Row `i` starts at flat offset `i·(2n − i − 1)/2`.
fn pair_at(p: usize, n: usize) -> (usize, usize) {
    debug_assert!(p < n * (n - 1) / 2);
    // Binary-search the largest row whose starting offset is <= p.
    let row_start = |i: usize| i * (2 * n - i - 1) / 2;
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if row_start(mid) <= p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let i = if row_start(hi) <= p { hi } else { lo };
    (i, i + 1 + (p - row_start(i)))
}

/// All-pairs DTW distances over `series` (each a slice of equal or varying
/// length). Returns a row-major symmetric N×N matrix with a zero diagonal.
///
/// Work is dispatched over chunks of `(i, j)` *pairs* — not rows — so the
/// per-chunk cost is uniform (row `i` owns `n − 1 − i` pairs, which made
/// row-granularity chunks progressively lighter and left the last workers
/// idle), and small inputs take the pool's inline path instead of paying
/// dispatch overhead. The worker owning pair `(i, j)` writes both `(i,j)`
/// and its mirror `(j,i)`, so each cell is written by exactly one worker
/// and the result is identical for any thread count.
pub fn dtw_all_pairs(series: &[Vec<f32>], band: usize) -> Vec<f32> {
    let n = series.len();
    let mut out = vec![0.0f32; n * n];
    if n < 2 {
        return out;
    }
    let n_pairs = n * (n - 1) / 2;
    let writer = pool::SliceWriter::new(&mut out);
    pool::par_chunks_weighted(n_pairs, dtw_work_estimate(series.iter(), band), |ps| {
        let (mut i, mut j) = pair_at(ps.start, n);
        for _ in ps {
            let d = dtw_banded(&series[i], &series[j], band);
            // Safety: cell (i,j) with j>i and its mirror (j,i) belong to
            // this pair's worker alone.
            unsafe {
                writer.slice(i * n + j..i * n + j + 1)[0] = d;
                writer.slice(j * n + i..j * n + i + 1)[0] = d;
            }
            j += 1;
            if j == n {
                i += 1;
                j = i + 1;
            }
        }
    });
    out
}

/// DTW distances from each of `from` to each of `to` (rows = `from`).
/// Parallel over the `(i, j)` cells of the output, weighted like
/// [`dtw_all_pairs`] so small products stay inline.
pub fn dtw_cross(from: &[Vec<f32>], to: &[Vec<f32>], band: usize) -> Vec<f32> {
    let (n, m) = (from.len(), to.len());
    let mut out = vec![0.0f32; n * m];
    if n == 0 || m == 0 {
        return out;
    }
    let writer = pool::SliceWriter::new(&mut out);
    pool::par_chunks_weighted(
        n * m,
        dtw_work_estimate(from.iter().chain(to.iter()), band),
        |cells| {
            // Safety: cell ranges are disjoint output cells.
            let chunk = unsafe { writer.slice(cells.start..cells.end) };
            for (ci, c) in cells.enumerate() {
                chunk[ci] = dtw_banded(&from[c / m], &to[c % m], band);
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn shifted_series_align_cheaply() {
        // DTW absorbs a pure time shift almost entirely, unlike Euclidean.
        let a = vec![0., 0., 1., 2., 3., 2., 1., 0., 0., 0.];
        let b = vec![0., 0., 0., 0., 1., 2., 3., 2., 1., 0.];
        let euclid: f32 = a.iter().zip(&b).map(|(x, y): (&f32, &f32)| (x - y).abs()).sum();
        let d = dtw(&a, &b);
        assert!(d < euclid, "dtw {d} not below euclid {euclid}");
        assert!(d <= 1e-6, "pure shift should align perfectly, got {d}");
    }

    #[test]
    fn dtw_upper_bounded_by_euclidean() {
        // For equal lengths the diagonal path is always available.
        let a = vec![0.3, -0.5, 1.2, 0.0, 2.2];
        let b = vec![1.0, 0.0, -0.2, 0.4, 2.0];
        let euclid: f32 = a.iter().zip(&b).map(|(x, y): (&f32, &f32)| (x - y).abs()).sum();
        assert!(dtw(&a, &b) <= euclid + 1e-6);
    }

    #[test]
    fn band_zero_equals_euclidean_for_equal_lengths() {
        let a = vec![0.3, -0.5, 1.2, 0.0];
        let b = vec![1.0, 0.0, -0.2, 0.4];
        let euclid: f32 = a.iter().zip(&b).map(|(x, y): (&f32, &f32)| (x - y).abs()).sum();
        assert!((dtw_banded(&a, &b, 0) - euclid).abs() < 1e-6);
    }

    #[test]
    fn widening_band_never_increases_distance() {
        let a: Vec<f32> = (0..30).map(|i| ((i as f32) * 0.4).sin()).collect();
        let b: Vec<f32> = (0..30).map(|i| ((i as f32) * 0.4 + 1.0).sin()).collect();
        let mut last = f32::INFINITY;
        for band in [0, 1, 2, 5, 10, usize::MAX] {
            let d = dtw_banded(&a, &b, band);
            assert!(d <= last + 1e-5, "band {band}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn unequal_lengths_work() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d > 0.0);
        // Symmetric.
        assert!((dtw(&b, &a) - d).abs() < 1e-6);
    }

    #[test]
    fn empty_series_edge_cases() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert!(dtw(&[1.0], &[]).is_infinite());
    }

    #[test]
    fn pair_at_inverts_flat_enumeration() {
        for n in [2, 3, 5, 10, 17] {
            let mut p = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(pair_at(p, n), (i, j), "n={n} p={p}");
                    p += 1;
                }
            }
            assert_eq!(p, n * (n - 1) / 2);
        }
    }

    #[test]
    fn all_pairs_symmetric() {
        let series = vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![0.0, 0.0]];
        let d = dtw_all_pairs(&series, usize::MAX);
        for i in 0..3 {
            assert_eq!(d[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(d[i * 3 + j], d[j * 3 + i]);
            }
        }
    }

    #[test]
    fn cross_matches_pairwise() {
        let from = vec![vec![1.0, 2.0, 3.0]];
        let to = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        let d = dtw_cross(&from, &to, usize::MAX);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - dtw(&from[0], &to[1])).abs() < 1e-6);
    }

    #[test]
    fn all_pairs_and_cross_bit_identical_across_thread_counts() {
        let series: Vec<Vec<f32>> = (0..24)
            .map(|s| {
                (0..48).map(|i| ((i * (s + 3)) as f32 * 0.17).sin() + s as f32 * 0.01).collect()
            })
            .collect();
        let (head, tail) = series.split_at(9);
        let ref_pairs = pool::with_max_threads(1, || dtw_all_pairs(&series, 6));
        let ref_cross = pool::with_max_threads(1, || dtw_cross(head, tail, 6));
        for cap in [2, 7] {
            let pairs = pool::with_max_threads(cap, || dtw_all_pairs(&series, 6));
            let cross = pool::with_max_threads(cap, || dtw_cross(head, tail, 6));
            assert_eq!(ref_pairs, pairs, "all_pairs differs at cap {cap}");
            assert_eq!(ref_cross, cross, "cross differs at cap {cap}");
        }
    }

    #[test]
    fn similarity_decreases_with_distance() {
        let s0 = dtw_similarity(0.0, 1.0);
        let s1 = dtw_similarity(1.0, 1.0);
        let s2 = dtw_similarity(2.0, 1.0);
        assert_eq!(s0, 1.0);
        assert!(s0 > s1 && s1 > s2 && s2 > 0.0);
    }
}
