//! Forecast accuracy metrics used throughout the paper's evaluation
//! (§5.1.3): RMSE, MAE, MAPE and R².

use serde::{Deserialize, Serialize};

/// The four metrics of Table 4 computed over one prediction set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Root mean squared error (lower is better).
    pub rmse: f64,
    /// Mean absolute error (lower is better).
    pub mae: f64,
    /// Mean absolute percentage error (lower is better). Targets with
    /// magnitude below a small threshold are skipped, matching common
    /// traffic-forecasting practice.
    pub mape: f64,
    /// Coefficient of determination (higher is better; can be negative when
    /// the model is worse than predicting the mean).
    pub r2: f64,
}

impl Metrics {
    /// Computes all four metrics of predictions vs. ground truth.
    ///
    /// Panics if lengths differ or the inputs are empty.
    pub fn compute(pred: &[f32], truth: &[f32]) -> Metrics {
        assert_eq!(pred.len(), truth.len(), "pred/truth length mismatch");
        assert!(!pred.is_empty(), "cannot compute metrics of empty slices");
        let n = pred.len() as f64;
        let mut se = 0.0f64;
        let mut ae = 0.0f64;
        let mut ape = 0.0f64;
        let mut ape_count = 0usize;
        let mut truth_sum = 0.0f64;
        for (&p, &t) in pred.iter().zip(truth.iter()) {
            let d = (p - t) as f64;
            se += d * d;
            ae += d.abs();
            truth_sum += t as f64;
            if t.abs() > 1e-3 {
                ape += (d / t as f64).abs();
                ape_count += 1;
            }
        }
        let truth_mean = truth_sum / n;
        let mut ss_tot = 0.0f64;
        for &t in truth {
            let d = t as f64 - truth_mean;
            ss_tot += d * d;
        }
        let r2 = if ss_tot > 0.0 { 1.0 - se / ss_tot } else { f64::NAN };
        Metrics {
            rmse: (se / n).sqrt(),
            mae: ae / n,
            mape: if ape_count > 0 { ape / ape_count as f64 } else { 0.0 },
            r2,
        }
    }

    /// Averages a set of metric records (used for the four space splits per
    /// dataset, §5.1.1).
    pub fn average(all: &[Metrics]) -> Metrics {
        assert!(!all.is_empty());
        let n = all.len() as f64;
        Metrics {
            rmse: all.iter().map(|m| m.rmse).sum::<f64>() / n,
            mae: all.iter().map(|m| m.mae).sum::<f64>() / n,
            mape: all.iter().map(|m| m.mape).sum::<f64>() / n,
            r2: all.iter().map(|m| m.r2).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RMSE {:.3} | MAE {:.3} | MAPE {:.3} | R2 {:.3}",
            self.rmse, self.mae, self.mape, self.r2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let m = Metrics::compute(&t, &t);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.r2, 1.0);
    }

    #[test]
    fn known_values() {
        let pred = vec![2.0, 4.0];
        let truth = vec![1.0, 2.0];
        let m = Metrics::compute(&pred, &truth);
        // errors: 1, 2 -> rmse = sqrt(2.5), mae = 1.5, mape = (1/1 + 2/2)/2 = 1
        assert!((m.rmse - 2.5f64.sqrt()).abs() < 1e-9);
        assert!((m.mae - 1.5).abs() < 1e-9);
        assert!((m.mape - 1.0).abs() < 1e-9);
        // ss_tot = (1-1.5)^2 + (2-1.5)^2 = 0.5 ; ss_res = 5 -> r2 = 1 - 10 = -9
        assert!((m.r2 + 9.0).abs() < 1e-9);
    }

    #[test]
    fn mean_prediction_gives_zero_r2() {
        let truth = vec![1.0, 2.0, 3.0];
        let pred = vec![2.0, 2.0, 2.0];
        let m = Metrics::compute(&pred, &truth);
        assert!(m.r2.abs() < 1e-9);
    }

    #[test]
    fn mape_skips_near_zero_targets() {
        let truth = vec![0.0, 2.0];
        let pred = vec![5.0, 3.0];
        let m = Metrics::compute(&pred, &truth);
        assert!((m.mape - 0.5).abs() < 1e-9, "only the non-zero target counts");
    }

    #[test]
    fn average_of_metrics() {
        let a = Metrics { rmse: 1.0, mae: 1.0, mape: 0.1, r2: 0.5 };
        let b = Metrics { rmse: 3.0, mae: 2.0, mape: 0.3, r2: 0.1 };
        let avg = Metrics::average(&[a, b]);
        assert_eq!(avg.rmse, 2.0);
        assert_eq!(avg.mae, 1.5);
        assert!((avg.mape - 0.2).abs() < 1e-12);
        assert!((avg.r2 - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = Metrics::compute(&[1.0], &[1.0, 2.0]);
    }
}
