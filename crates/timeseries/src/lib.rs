//! # stsm-timeseries
//!
//! Time-series utilities for the STSM reproduction (EDBT 2024): dynamic time
//! warping (exact and Sakoe–Chiba banded) for the temporal-similarity
//! adjacency `A_dtw`, the four evaluation metrics of the paper (RMSE, MAE,
//! MAPE, R²), sliding-window extraction, z-score scaling and daily-profile
//! aggregation.

#![warn(missing_docs)]

mod analysis;
mod dtw;
mod metrics;
mod prune;
mod rolling;
mod windows;

pub use analysis::{autocorrelation, dominant_period, HorizonMetrics};
pub use dtw::{dtw, dtw_all_pairs, dtw_banded, dtw_cross, dtw_similarity};
pub use metrics::Metrics;
pub use prune::{
    dtw_envelope, dtw_envelope_extend, dtw_envelopes, dtw_nearest, dtw_top_q,
    dtw_top_q_with_candidates, lb_keogh, lb_kim, DtwEnvelope, PruneStats, SparseNeighbors,
};
pub use rolling::{DtwFrontier, RollingNeighbors};
pub use windows::{daily_profile, sliding_windows, time_of_day_ids, Scaler, WindowIndex};
