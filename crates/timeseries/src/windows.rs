//! Sliding-window extraction, z-score scaling and daily-profile aggregation
//! for the data pipeline (§5.1.1: past `T` steps predict the next `T'`).

use serde::{Deserialize, Serialize};

/// Index pair describing one training sample: the input window
/// `[input_start, input_start + t_in)` and the target window
/// `[input_start + t_in, input_start + t_in + t_out)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowIndex {
    /// First time index of the input window.
    pub input_start: usize,
    /// Input window length `T`.
    pub t_in: usize,
    /// Target window length `T'`.
    pub t_out: usize,
}

impl WindowIndex {
    /// First time index of the target window.
    pub fn target_start(&self) -> usize {
        self.input_start + self.t_in
    }

    /// One-past-the-end index of the target window.
    pub fn end(&self) -> usize {
        self.input_start + self.t_in + self.t_out
    }
}

/// Enumerates all complete `(input, target)` windows over `total_steps` time
/// steps with the given stride.
pub fn sliding_windows(
    total_steps: usize,
    t_in: usize,
    t_out: usize,
    stride: usize,
) -> Vec<WindowIndex> {
    assert!(stride >= 1, "stride must be at least 1");
    let mut out = Vec::new();
    if total_steps < t_in + t_out {
        return out;
    }
    let mut start = 0usize;
    while start + t_in + t_out <= total_steps {
        out.push(WindowIndex { input_start: start, t_in, t_out });
        start += stride;
    }
    out
}

/// Z-score normalization fitted on training data and applied everywhere,
/// standard practice for traffic forecasting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scaler {
    /// Fitted mean.
    pub mean: f32,
    /// Fitted standard deviation (floored to avoid division by ~0).
    pub std: f32,
}

impl Scaler {
    /// Fits mean/std over the values.
    pub fn fit(values: &[f32]) -> Scaler {
        assert!(!values.is_empty(), "cannot fit a scaler on no data");
        let n = values.len() as f64;
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        Scaler { mean: mean as f32, std: (var.sqrt() as f32).max(1e-6) }
    }

    /// Standardizes a single value.
    pub fn transform(&self, v: f32) -> f32 {
        (v - self.mean) / self.std
    }

    /// Inverts [`Scaler::transform`].
    pub fn inverse(&self, v: f32) -> f32 {
        v * self.std + self.mean
    }

    /// Standardizes a slice in place.
    pub fn transform_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.transform(*v);
        }
    }

    /// Inverse-transforms a slice in place.
    pub fn inverse_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.inverse(*v);
        }
    }
}

/// Averages a per-step series into a daily profile of `steps_per_day` bins,
/// optionally downsampled by `downsample` (each profile bin is the mean of
/// `downsample` consecutive steps). Used to cheapen all-pairs DTW.
pub fn daily_profile(series: &[f32], steps_per_day: usize, downsample: usize) -> Vec<f32> {
    assert!(steps_per_day >= 1 && downsample >= 1);
    assert!(
        steps_per_day.is_multiple_of(downsample),
        "downsample {downsample} must divide steps_per_day {steps_per_day}"
    );
    let bins = steps_per_day / downsample;
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0usize; bins];
    for (t, &v) in series.iter().enumerate() {
        let bin = (t % steps_per_day) / downsample;
        sums[bin] += v as f64;
        counts[bin] += 1;
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
        .collect()
}

/// Time-of-day interval ids for a window of length `len` starting at absolute
/// step `start`, given `steps_per_day` (the paper's `TE`, §3.4.1).
pub fn time_of_day_ids(start: usize, len: usize, steps_per_day: usize) -> Vec<usize> {
    (0..len).map(|i| (start + i) % steps_per_day).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_exactly() {
        let w = sliding_windows(10, 3, 2, 1);
        assert_eq!(w.len(), 6); // starts 0..=5
        assert_eq!(w[0].target_start(), 3);
        assert_eq!(w[5].end(), 10);
        assert!(sliding_windows(4, 3, 2, 1).is_empty());
        let strided = sliding_windows(20, 4, 4, 3);
        assert!(strided.iter().all(|w| w.end() <= 20));
        assert_eq!(strided[1].input_start - strided[0].input_start, 3);
    }

    #[test]
    fn scaler_roundtrip() {
        let data = vec![10.0, 20.0, 30.0, 40.0];
        let s = Scaler::fit(&data);
        assert!((s.mean - 25.0).abs() < 1e-5);
        for &v in &data {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-4);
        }
        let mut copy = data.clone();
        s.transform_slice(&mut copy);
        let m: f32 = copy.iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5, "standardized mean should be ~0");
        s.inverse_slice(&mut copy);
        for (a, b) in copy.iter().zip(&data) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn scaler_constant_series_is_safe() {
        let s = Scaler::fit(&[5.0, 5.0, 5.0]);
        assert!(s.transform(5.0).abs() < 1e-3);
        assert!(s.transform(6.0).is_finite());
    }

    #[test]
    fn daily_profile_averages_days() {
        // Two days of 4 steps: day 1 = [0,1,2,3], day 2 = [4,5,6,7].
        let series = vec![0., 1., 2., 3., 4., 5., 6., 7.];
        let p = daily_profile(&series, 4, 1);
        assert_eq!(p, vec![2., 3., 4., 5.]);
        let p2 = daily_profile(&series, 4, 2);
        assert_eq!(p2, vec![2.5, 4.5]);
    }

    #[test]
    fn time_of_day_wraps() {
        assert_eq!(time_of_day_ids(2, 4, 4), vec![2, 3, 0, 1]);
        assert_eq!(time_of_day_ids(0, 3, 24), vec![0, 1, 2]);
    }
}
