//! Lower-bound-pruned sparse top-q DTW neighbour search.
//!
//! The paper builds `A_dtw` from all-pairs banded DTW — O(N²·T·band) time
//! and an O(N²) distance matrix. Only the `q` nearest neighbours of each
//! node ever reach the adjacency, so this module computes exactly those,
//! without materializing the N² buffer, via a cascade of *admissible* lower
//! bounds evaluated against the current q-th-best distance of the node
//! under search:
//!
//! 1. **LB_Kim** (constant time): every complete warping path matches the
//!    first cells and the last cells of both series, so
//!    `|a₀−b₀| + |a_end−b_end|` never exceeds the DTW distance (the two
//!    cells coincide only when both series have length 1, where the single
//!    term is used).
//! 2. **LB_Keogh** (O(T)): with `U/L` the running max/min of `b` over a
//!    window of half-width `band`, every `aᵢ` is matched to some `b_j`
//!    within the band, so `Σᵢ max(0, aᵢ−Uᵢ, Lᵢ−aᵢ)` lower-bounds the
//!    banded DTW for equal-length series. Both directions (query against
//!    candidate envelope and candidate against query envelope) are tried.
//! 3. **Full [`dtw_banded`]** only for survivors — the same kernel as the
//!    dense path, so surviving distances are bitwise identical to
//!    [`dtw_all_pairs`] entries and the selected top-q sets (ranked by
//!    distance, ties by index) match the dense ranking exactly.
//!
//! Pruning compares a lower bound against the threshold with a small
//! inflation margin ([`beats_threshold`]): the bounds are exact over the
//! reals but both sides are f32 sums, so a few ulps of slack guarantees a
//! rounded-up bound can never evict a true neighbour. Everything the
//! cascade skips or keeps is counted in the `dtw.lb_kim_pruned`,
//! `dtw.lb_keogh_pruned` and `dtw.full_dtw` telemetry counters, and the
//! whole search runs under a `dtw.top_q` span.

use crate::dtw::dtw_banded_abandon;
use stsm_tensor::{pool, telemetry};

/// Per-series precomputation for the pruning cascade: the Keogh envelope at
/// a given band half-width plus the endpoint values LB_Kim needs.
#[derive(Clone, Debug)]
pub struct DtwEnvelope {
    /// Running minimum of the series over `[i−band, i+band]`.
    pub lower: Vec<f32>,
    /// Running maximum of the series over `[i−band, i+band]`.
    pub upper: Vec<f32>,
    first: f32,
    last: f32,
}

impl DtwEnvelope {
    /// Series length the envelope was built from.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// True when built from an empty series.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }
}

/// Builds the Sakoe–Chiba envelope of `series` with half-width `band` in
/// O(T) via monotonic deques (`usize::MAX` = global min/max).
pub fn dtw_envelope(series: &[f32], band: usize) -> DtwEnvelope {
    let t = series.len();
    if t == 0 {
        return DtwEnvelope { lower: Vec::new(), upper: Vec::new(), first: 0.0, last: 0.0 };
    }
    let r = band.min(t);
    let mut lower = vec![0.0f32; t];
    let mut upper = vec![0.0f32; t];
    fill_envelope_range(series, r, 0, t, &mut lower, &mut upper);
    DtwEnvelope { lower, upper, first: series[0], last: series[t - 1] }
}

/// Fills `lower[i]`/`upper[i]` for `i ∈ [lo, hi)` with the min/max of
/// `series` over the window `[i−r, i+r]` (clamped). The deque state at any
/// position is a pure function of the window contents — elements left of
/// the window are popped from the front, elements dominated inside it from
/// the back — so a range fill produces bitwise the same values a full scan
/// would.
fn fill_envelope_range(
    series: &[f32],
    r: usize,
    lo: usize,
    hi: usize,
    lower: &mut [f32],
    upper: &mut [f32],
) {
    let t = series.len();
    // Monotonic deques of indices; front = current window extremum. Window
    // for position i is [i-r, i+r] clamped to the series.
    let mut max_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut min_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut pushed = lo.saturating_sub(r);
    for i in lo..hi {
        let end = (i + r).min(t - 1);
        while pushed <= end {
            while max_dq.back().is_some_and(|&b| series[b] <= series[pushed]) {
                max_dq.pop_back();
            }
            max_dq.push_back(pushed);
            while min_dq.back().is_some_and(|&b| series[b] >= series[pushed]) {
                min_dq.pop_back();
            }
            min_dq.push_back(pushed);
            pushed += 1;
        }
        let start = i.saturating_sub(r);
        while max_dq.front().is_some_and(|&f| f < start) {
            max_dq.pop_front();
        }
        while min_dq.front().is_some_and(|&f| f < start) {
            min_dq.pop_front();
        }
        upper[i] = series[*max_dq.front().expect("non-empty window")];
        lower[i] = series[*min_dq.front().expect("non-empty window")];
    }
}

/// Extends `env` — built by [`dtw_envelope`] from a prefix of `series` with
/// the same `band` — to cover the full `series`, recomputing only the
/// suffix whose windows reach the appended samples. Bitwise identical to a
/// full rebuild: entries below `old_len − band` have windows wholly inside
/// the old prefix and are untouched, and the recomputed tail runs the same
/// monotonic-deque pass over the same windows.
pub fn dtw_envelope_extend(env: &mut DtwEnvelope, series: &[f32], band: usize) {
    let t = series.len();
    let old = env.len();
    assert!(t >= old, "series cannot shrink under extend");
    if t == old {
        return;
    }
    // A clamped radius (band ≥ old length) widens with the series; rebuild.
    if old == 0 || band >= old {
        *env = dtw_envelope(series, band);
        return;
    }
    env.lower.resize(t, 0.0);
    env.upper.resize(t, 0.0);
    fill_envelope_range(series, band, old - band, t, &mut env.lower, &mut env.upper);
    env.first = series[0];
    env.last = series[t - 1];
}

/// Builds envelopes for every series in parallel on the shared pool.
pub fn dtw_envelopes(series: &[Vec<f32>], band: usize) -> Vec<DtwEnvelope> {
    pool::par_map_chunks(series.len(), 64, |rows| {
        rows.map(|i| dtw_envelope(&series[i], band)).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Constant-time endpoint lower bound on `dtw_banded(a, b, ·)` for any band:
/// every complete warping path contains the cells `(0,0)` and
/// `(n−1, m−1)`, which are distinct unless both series are singletons.
pub fn lb_kim(a: &[f32], b: &[f32]) -> f32 {
    lb_kim_endpoints(a.first().copied(), a.last().copied(), b.first().copied(), b.last().copied())
}

fn lb_kim_endpoints(af: Option<f32>, al: Option<f32>, bf: Option<f32>, bl: Option<f32>) -> f32 {
    match (af, al, bf, bl) {
        (Some(af), Some(al), Some(bf), Some(bl)) => {
            let head = (af - bf).abs();
            let tail = (al - bl).abs();
            // Both endpoints map to the same single cell only when both
            // series are singletons; then the path cost is exactly `head`.
            if af.to_bits() == al.to_bits() && bf.to_bits() == bl.to_bits() {
                head.max(tail)
            } else {
                head + tail
            }
        }
        _ => 0.0,
    }
}

/// Envelope lower bound on `dtw_banded(query, b, band)` where `env` is the
/// envelope of `b` built with the same (or larger) half-width. Returns the
/// *tighter* of the Keogh sum and [`lb_kim`], so the cascade invariant
/// `lb_kim ≤ lb_keogh ≤ dtw_banded` holds by construction. The Keogh sum
/// applies to equal-length series; for unequal lengths only the endpoint
/// part is used.
pub fn lb_keogh(query: &[f32], env: &DtwEnvelope) -> f32 {
    let kim = lb_kim_endpoints(
        query.first().copied(),
        query.last().copied(),
        if env.is_empty() { None } else { Some(env.first) },
        if env.is_empty() { None } else { Some(env.last) },
    );
    if query.len() != env.len() || query.is_empty() {
        return kim;
    }
    let mut sum = 0.0f32;
    for ((&q, &u), &l) in query.iter().zip(&env.upper).zip(&env.lower) {
        if q > u {
            sum += q - u;
        } else if q < l {
            sum += l - q;
        }
    }
    sum.max(kim)
}

/// True when lower bound `lb` proves a candidate cannot beat threshold
/// `tau` (the current q-th best distance). The margin absorbs f32 rounding:
/// the bounds are admissible over the reals, but the bound and the DTW
/// kernel accumulate in different orders, so a bound a few ulps above the
/// true distance must never prune a candidate that ties the threshold.
#[inline]
pub(crate) fn threshold_cut(tau: f32) -> f32 {
    tau * (1.0 + 1e-5) + 1e-6
}

#[inline]
fn beats_threshold(lb: f32, tau: f32) -> bool {
    lb > threshold_cut(tau)
}

/// Early-abandoning cascade form of [`lb_keogh`]: decides
/// `beats_threshold(lb_keogh(query, env), tau)` without always summing the
/// whole series. The partial Keogh sum is itself a lower bound and only
/// grows, so the first prefix beating the cut settles the decision; the
/// endpoint (`lb_kim`) part of `lb_keogh` is irrelevant here because the
/// caller only reaches this check after LB_Kim failed to prune.
fn lb_keogh_beats(query: &[f32], env: &DtwEnvelope, tau: f32) -> bool {
    if query.len() != env.len() || query.is_empty() {
        return false;
    }
    let cut = threshold_cut(tau);
    let mut sum = 0.0f32;
    for ((&q, &u), &l) in query.iter().zip(&env.upper).zip(&env.lower) {
        if q > u {
            sum += q - u;
        } else if q < l {
            sum += l - q;
        }
        if sum > cut {
            return true;
        }
    }
    false
}

/// Sparse top-q neighbour structure: for each of `n` nodes, up to `q`
/// `(neighbour, distance)` entries sorted by ascending `(distance, index)` —
/// exactly the first entries of the dense [`dtw_all_pairs`] ranking.
/// Storage is O(N·q); no N² buffer exists at any point.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseNeighbors {
    q: usize,
    offsets: Vec<usize>,
    idx: Vec<u32>,
    dist: Vec<f32>,
}

impl SparseNeighbors {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the structure covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() <= 1
    }

    /// The `q` requested at construction (rows may hold fewer entries when
    /// a node has fewer candidates).
    pub fn q(&self) -> usize {
        self.q
    }

    /// Neighbour indices of node `i`, ascending by `(distance, index)`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.idx[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Distances aligned with [`Self::neighbors`].
    pub fn distances(&self, i: usize) -> &[f32] {
        &self.dist[self.offsets[i]..self.offsets[i + 1]]
    }

    /// `(neighbour, distance)` pairs of node `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.neighbors(i).iter().copied().zip(self.distances(i).iter().copied())
    }

    pub(crate) fn from_rows(q: usize, rows: Vec<Vec<(u32, f32)>>) -> SparseNeighbors {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0usize);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut idx = Vec::with_capacity(total);
        let mut dist = Vec::with_capacity(total);
        for row in rows {
            for (j, d) in row {
                idx.push(j);
                dist.push(d);
            }
            offsets.push(idx.len());
        }
        SparseNeighbors { q, offsets, idx, dist }
    }
}

/// Aggregated cascade outcome counts for one search (also exported through
/// the telemetry counters `dtw.lb_kim_pruned` / `dtw.lb_keogh_pruned` /
/// `dtw.full_dtw`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidates discarded by the constant-time endpoint bound.
    pub lb_kim_pruned: u64,
    /// Candidates discarded by the envelope bound (either direction).
    pub lb_keogh_pruned: u64,
    /// Candidates that reached the full banded-DTW kernel.
    pub full_dtw: u64,
}

impl PruneStats {
    fn add(&mut self, other: PruneStats) {
        self.lb_kim_pruned += other.lb_kim_pruned;
        self.lb_keogh_pruned += other.lb_keogh_pruned;
        self.full_dtw += other.full_dtw;
    }

    /// Fraction of candidates pruned before the full kernel (0 when no
    /// candidates were examined).
    pub fn pruning_rate(&self) -> f64 {
        let total = self.lb_kim_pruned + self.lb_keogh_pruned + self.full_dtw;
        if total == 0 {
            0.0
        } else {
            (self.lb_kim_pruned + self.lb_keogh_pruned) as f64 / total as f64
        }
    }

    fn publish(&self) {
        telemetry::count("dtw.lb_kim_pruned", self.lb_kim_pruned);
        telemetry::count("dtw.lb_keogh_pruned", self.lb_keogh_pruned);
        telemetry::count("dtw.full_dtw", self.full_dtw);
    }
}

/// Bounded best-q set ordered by `(distance, index)`; the max-heap root is
/// the current worst kept entry, i.e. the pruning threshold.
pub(crate) struct BestQ {
    q: usize,
    // (distance bits don't order correctly; keep f32 and compare lexically)
    heap: std::collections::BinaryHeap<HeapEntry>,
}

struct HeapEntry {
    d: f32,
    idx: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d.total_cmp(&other.d).then(self.idx.cmp(&other.idx))
    }
}

impl BestQ {
    pub(crate) fn new(q: usize) -> BestQ {
        BestQ { q, heap: std::collections::BinaryHeap::with_capacity(q + 1) }
    }

    /// Current threshold: no candidate whose distance provably exceeds this
    /// can enter the set. `None` until `q` entries are held.
    pub(crate) fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.q {
            None
        } else {
            self.heap.peek().map(|e| e.d)
        }
    }

    pub(crate) fn offer(&mut self, idx: u32, d: f32) {
        if self.heap.len() < self.q {
            self.heap.push(HeapEntry { d, idx });
        } else if let Some(worst) = self.heap.peek() {
            if (HeapEntry { d, idx }) < *worst {
                self.heap.pop();
                self.heap.push(HeapEntry { d, idx });
            }
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<(u32, f32)> {
        let mut v: Vec<HeapEntry> = self.heap.into_vec();
        v.sort();
        v.into_iter().map(|e| (e.idx, e.d)).collect()
    }
}

/// One node's sorted `(neighbour, distance)` entries.
type NeighborRow = Vec<(u32, f32)>;

/// Runs the cascade for `query` against the listed candidates, returning the
/// exact top-`q` `(candidate, distance)` pairs by ascending
/// `(distance, index)`. `envelopes[c]` must be the envelope of `series[c]`
/// built with half-width ≥ `band`; `query_env` is the query's own envelope
/// (used for the reverse Keogh bound).
#[allow(clippy::too_many_arguments)]
pub fn dtw_nearest(
    query: &[f32],
    query_env: &DtwEnvelope,
    series: &[Vec<f32>],
    envelopes: &[DtwEnvelope],
    candidates: &[u32],
    band: usize,
    q: usize,
    stats: &mut PruneStats,
) -> Vec<(u32, f32)> {
    debug_assert_eq!(series.len(), envelopes.len());
    if q == 0 {
        return Vec::new();
    }
    let mut best = BestQ::new(q.min(candidates.len().max(1)));
    for &c in candidates {
        let cs = &series[c as usize];
        let tau = best.threshold();
        if let Some(tau) = tau {
            let kim = lb_kim(query, cs);
            if beats_threshold(kim, tau) {
                stats.lb_kim_pruned += 1;
                continue;
            }
            if lb_keogh_beats(query, &envelopes[c as usize], tau)
                || lb_keogh_beats(cs, query_env, tau)
            {
                stats.lb_keogh_pruned += 1;
                continue;
            }
        }
        stats.full_dtw += 1;
        // Survivors still early-abandon inside the kernel: a row minimum
        // beating the cut proves the distance cannot enter the top-q, and
        // an unabandoned result is bitwise equal to `dtw_banded`.
        let cut = tau.map_or(f32::INFINITY, threshold_cut);
        if let Some(d) = dtw_banded_abandon(query, cs, band, cut) {
            best.offer(c, d);
        }
    }
    best.into_sorted()
}

/// Exact sparse top-`q` DTW neighbours of every series against every other,
/// replacing the dense [`dtw_all_pairs`] + per-row sort route. Nodes fan out
/// over the shared worker pool; each node's scan is independent, so results
/// (and the pruning counters) are identical for any thread count.
pub fn dtw_top_q(series: &[Vec<f32>], band: usize, q: usize) -> (SparseNeighbors, PruneStats) {
    dtw_top_q_impl(series, band, q, None)
}

/// [`dtw_top_q`] restricted to per-node candidate lists (e.g. spatial
/// k-nearest sensors): node `i` only considers `candidates[i]`. Self-links
/// are ignored. Top-q selection within the listed candidates is still exact.
pub fn dtw_top_q_with_candidates(
    series: &[Vec<f32>],
    band: usize,
    q: usize,
    candidates: &[Vec<u32>],
) -> (SparseNeighbors, PruneStats) {
    assert_eq!(candidates.len(), series.len(), "one candidate list per series");
    dtw_top_q_impl(series, band, q, Some(candidates))
}

fn dtw_top_q_impl(
    series: &[Vec<f32>],
    band: usize,
    q: usize,
    candidates: Option<&[Vec<u32>]>,
) -> (SparseNeighbors, PruneStats) {
    let _span = telemetry::span("dtw.top_q");
    let n = series.len();
    let envelopes = dtw_envelopes(series, band);
    // Per-chunk stats merge order is fixed by chunk order, and u64 sums are
    // associative, so totals are thread-count independent.
    let chunk_results: Vec<(Vec<NeighborRow>, PruneStats)> = pool::par_map_chunks(n, 8, |rows| {
        let mut stats = PruneStats::default();
        let rows_out: Vec<NeighborRow> = rows
            .map(|i| {
                let all: Vec<u32>;
                let cands: &[u32] = match candidates {
                    Some(lists) => &lists[i],
                    None => {
                        all = (0..n as u32).filter(|&j| j as usize != i).collect();
                        &all
                    }
                };
                // Defensive: drop self-links from caller-provided lists.
                let filtered: Vec<u32>;
                let cands = if cands.iter().any(|&c| c as usize == i) {
                    filtered = cands.iter().copied().filter(|&c| c as usize != i).collect();
                    &filtered
                } else {
                    cands
                };
                dtw_nearest(
                    &series[i],
                    &envelopes[i],
                    series,
                    &envelopes,
                    cands,
                    band,
                    q,
                    &mut stats,
                )
            })
            .collect();
        (rows_out, stats)
    });
    let mut stats = PruneStats::default();
    let mut rows = Vec::with_capacity(n);
    for (chunk_rows, chunk_stats) in chunk_results {
        rows.extend(chunk_rows);
        stats.add(chunk_stats);
    }
    stats.publish();
    (SparseNeighbors::from_rows(q, rows), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw_all_pairs, dtw_banded};

    fn wavy(n: usize, t: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|s| {
                (0..t)
                    .map(|i| {
                        ((i * (s % 7 + 3)) as f32 * 0.13).sin() + (s as f32 * 0.41).cos() * 0.5
                    })
                    .collect()
            })
            .collect()
    }

    /// Dense reference ranking: sort each row of `dtw_all_pairs` by
    /// `(distance, index)` and truncate to `q`.
    fn dense_top_q(series: &[Vec<f32>], band: usize, q: usize) -> Vec<Vec<(u32, f32)>> {
        let n = series.len();
        let d = dtw_all_pairs(series, band);
        (0..n)
            .map(|i| {
                let mut row: Vec<(u32, f32)> = (0..n as u32)
                    .filter(|&j| j as usize != i)
                    .map(|j| (j, d[i * n + j as usize]))
                    .collect();
                row.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                row.truncate(q);
                row
            })
            .collect()
    }

    #[test]
    fn envelope_bounds_series() {
        let s: Vec<f32> = (0..40).map(|i| ((i as f32) * 0.3).sin()).collect();
        for band in [0, 1, 3, 10, usize::MAX] {
            let e = dtw_envelope(&s, band);
            for i in 0..s.len() {
                assert!(e.lower[i] <= s[i] && s[i] <= e.upper[i], "band {band} i {i}");
                let lo = i.saturating_sub(band.min(s.len()));
                let hi = (i + band.min(s.len())).min(s.len() - 1);
                let wmin = s[lo..=hi].iter().copied().fold(f32::INFINITY, f32::min);
                let wmax = s[lo..=hi].iter().copied().fold(f32::NEG_INFINITY, f32::max);
                assert_eq!(e.lower[i], wmin, "band {band} i {i}");
                assert_eq!(e.upper[i], wmax, "band {band} i {i}");
            }
        }
    }

    #[test]
    fn envelope_band_zero_is_series() {
        let s = vec![3.0f32, -1.0, 2.0];
        let e = dtw_envelope(&s, 0);
        assert_eq!(e.lower, s);
        assert_eq!(e.upper, s);
    }

    #[test]
    fn bounds_are_admissible_on_fixed_cases() {
        let cases: Vec<(Vec<f32>, Vec<f32>)> = vec![
            (vec![0.0, 0.0], vec![1.0, 0.0]),
            (vec![1.0], vec![-2.0]),
            (vec![0.0, 5.0, 0.0], vec![5.0, 0.0, 5.0]),
            (
                (0..30).map(|i| (i as f32 * 0.4).sin()).collect(),
                (0..30).map(|i| (i as f32 * 0.4 + 1.0).cos()).collect(),
            ),
        ];
        for (a, b) in &cases {
            for band in [0usize, 1, 2, 8, usize::MAX] {
                let d = dtw_banded(a, b, band);
                let kim = lb_kim(a, b);
                let keogh = lb_keogh(a, &dtw_envelope(b, band));
                assert!(kim <= keogh + 1e-5, "kim {kim} > keogh {keogh}");
                assert!(keogh <= d * (1.0 + 1e-5) + 1e-5, "keogh {keogh} > dtw {d} (band {band})");
            }
        }
    }

    #[test]
    fn singleton_series_bound_is_exact_not_doubled() {
        let a = vec![3.0f32];
        let b = vec![1.0f32];
        assert_eq!(lb_kim(&a, &b), 2.0);
        assert_eq!(dtw_banded(&a, &b, usize::MAX), 2.0);
    }

    #[test]
    fn top_q_matches_dense_ranking_bitwise() {
        let series = wavy(60, 48);
        for (band, q) in [(4usize, 1usize), (8, 3), (usize::MAX, 5)] {
            let (sparse, stats) = dtw_top_q(&series, band, q);
            let dense = dense_top_q(&series, band, q);
            assert_eq!(sparse.len(), series.len());
            for (i, dense_row) in dense.iter().enumerate() {
                let got: Vec<(u32, u32)> = sparse.row(i).map(|(j, d)| (j, d.to_bits())).collect();
                let want: Vec<(u32, u32)> =
                    dense_row.iter().map(|&(j, d)| (j, d.to_bits())).collect();
                assert_eq!(got, want, "node {i} band {band} q {q}");
            }
            assert!(stats.lb_kim_pruned + stats.lb_keogh_pruned > 0, "no pruning at all");
        }
    }

    #[test]
    fn candidate_lists_restrict_search() {
        let series = wavy(20, 32);
        let cands: Vec<Vec<u32>> =
            (0..20u32).map(|i| (0..20u32).filter(|&j| j != i && j % 2 == 0).collect()).collect();
        let (sparse, _) = dtw_top_q_with_candidates(&series, 4, 3, &cands);
        for i in 0..20 {
            for j in sparse.neighbors(i) {
                assert_eq!(j % 2, 0, "node {i} linked odd candidate {j}");
            }
        }
        // Within the candidate set the selection is still the exact top-q.
        let dense = dense_top_q(&series, 4, 20);
        for (i, dense_row) in dense.iter().enumerate() {
            let want: Vec<u32> = dense_row
                .iter()
                .map(|&(j, _)| j)
                .filter(|&j| j % 2 == 0 && j as usize != i)
                .take(3)
                .collect();
            assert_eq!(sparse.neighbors(i), &want[..], "node {i}");
        }
    }

    #[test]
    fn top_q_identical_across_thread_counts() {
        let series = wavy(40, 40);
        let reference = pool::with_max_threads(1, || dtw_top_q(&series, 6, 3));
        for cap in [2, 5] {
            let got = pool::with_max_threads(cap, || dtw_top_q(&series, 6, 3));
            assert_eq!(reference.0, got.0, "neighbours differ at cap {cap}");
            assert_eq!(reference.1, got.1, "stats differ at cap {cap}");
        }
    }

    #[test]
    fn handles_fewer_candidates_than_q() {
        let series = wavy(3, 16);
        let (sparse, _) = dtw_top_q(&series, 4, 10);
        for i in 0..3 {
            assert_eq!(sparse.neighbors(i).len(), 2);
        }
    }

    #[test]
    fn telemetry_counters_register_pruning() {
        let series = wavy(30, 40);
        telemetry::with_telemetry(true, || {
            telemetry::reset();
            let (_, stats) = dtw_top_q(&series, 6, 2);
            assert_eq!(telemetry::counter_value("dtw.lb_kim_pruned"), stats.lb_kim_pruned);
            assert_eq!(telemetry::counter_value("dtw.lb_keogh_pruned"), stats.lb_keogh_pruned);
            assert_eq!(telemetry::counter_value("dtw.full_dtw"), stats.full_dtw);
            assert!(stats.full_dtw > 0);
        });
    }
}
