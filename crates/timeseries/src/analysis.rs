//! Forecast analysis beyond scalar metrics: per-horizon error curves,
//! grouped metrics and autocorrelation — the tooling behind the error
//! breakdowns in EXPERIMENTS.md.

use crate::metrics::Metrics;
use serde::{Deserialize, Serialize};

/// Per-horizon metrics: how error grows with the forecast lead time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HorizonMetrics {
    /// One [`Metrics`] per horizon step `1..=T'`.
    pub per_horizon: Vec<Metrics>,
}

impl HorizonMetrics {
    /// Computes per-horizon metrics from flattened predictions laid out as
    /// `sample-major` blocks of `t_out` consecutive horizon steps
    /// (`[s0h0, s0h1, ..., s0h(T'-1), s1h0, ...]`).
    pub fn compute(pred: &[f32], truth: &[f32], t_out: usize) -> HorizonMetrics {
        assert_eq!(pred.len(), truth.len());
        assert!(
            t_out >= 1 && pred.len().is_multiple_of(t_out),
            "length must be a multiple of t_out"
        );
        let samples = pred.len() / t_out;
        let mut per_horizon = Vec::with_capacity(t_out);
        for h in 0..t_out {
            let p: Vec<f32> = (0..samples).map(|s| pred[s * t_out + h]).collect();
            let t: Vec<f32> = (0..samples).map(|s| truth[s * t_out + h]).collect();
            per_horizon.push(Metrics::compute(&p, &t));
        }
        HorizonMetrics { per_horizon }
    }

    /// RMSE sequence over horizons.
    pub fn rmse_curve(&self) -> Vec<f64> {
        self.per_horizon.iter().map(|m| m.rmse).collect()
    }

    /// Whether error is (weakly) non-decreasing with lead time — the usual
    /// sanity shape of a forecaster.
    pub fn error_grows_with_horizon(&self, tolerance: f64) -> bool {
        self.rmse_curve().windows(2).all(|w| w[1] >= w[0] - tolerance)
    }
}

/// Sample autocorrelation of a series at lags `0..=max_lag`.
pub fn autocorrelation(series: &[f32], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n > max_lag, "series too short for requested lags");
    let mean = series.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|&v| (v as f64 - mean).powi(2)).sum();
    if var <= 0.0 {
        return vec![1.0; max_lag + 1];
    }
    (0..=max_lag)
        .map(|lag| {
            let cov: f64 = (0..n - lag)
                .map(|i| (series[i] as f64 - mean) * (series[i + lag] as f64 - mean))
                .sum();
            cov / var
        })
        .collect()
}

/// The lag (within `1..=max_lag`) at the strongest *local* peak of the
/// autocorrelation — a crude period detector used to verify simulated
/// signals are diurnal. A raw argmax would degenerate to lag 1 for any
/// smooth series (adjacent samples are always highly correlated); the
/// period shows up as the first place the ACF turns back up.
pub fn dominant_period(series: &[f32], max_lag: usize) -> usize {
    let acf = autocorrelation(series, max_lag);
    let mut best: Option<usize> = None;
    for lag in 1..max_lag {
        let peak = acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1];
        if peak && best.is_none_or(|b| acf[lag] > acf[b]) {
            best = Some(lag);
        }
    }
    // Aperiodic (or trend-dominated) series have no interior peak; fall
    // back to the plain argmax.
    best.unwrap_or_else(|| {
        (1..=max_lag).max_by(|&a, &b| acf[a].partial_cmp(&acf[b]).expect("finite")).unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_metrics_split_correctly() {
        // Two samples, three horizons; horizon h has error h+1 everywhere.
        let truth = vec![0.0; 6];
        let pred = vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
        let hm = HorizonMetrics::compute(&pred, &truth, 3);
        assert_eq!(hm.per_horizon.len(), 3);
        assert!((hm.per_horizon[0].rmse - 1.0).abs() < 1e-9);
        assert!((hm.per_horizon[1].rmse - 2.0).abs() < 1e-9);
        assert!((hm.per_horizon[2].rmse - 3.0).abs() < 1e-9);
        assert!(hm.error_grows_with_horizon(0.0));
        assert_eq!(hm.rmse_curve(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn non_monotone_detected() {
        let truth = vec![0.0; 4];
        let pred = vec![3.0, 1.0, 3.0, 1.0];
        let hm = HorizonMetrics::compute(&pred, &truth, 2);
        assert!(!hm.error_grows_with_horizon(0.0));
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let series: Vec<f32> =
            (0..200).map(|i| ((i % 20) as f32 / 20.0 * std::f32::consts::TAU).sin()).collect();
        let acf = autocorrelation(&series, 40);
        assert!((acf[0] - 1.0).abs() < 1e-9);
        // The estimator divides the (n-lag)-term covariance by the n-term
        // variance, so a perfectly periodic signal peaks at exactly
        // (n-lag)/n = 180/200 = 0.9, not 1.
        assert!((acf[20] - 0.9).abs() < 1e-3, "lag-20 ACF {} should be ~(n-lag)/n = 0.9", acf[20]);
        assert!(acf[10] < 0.0, "half-period ACF {} should be negative", acf[10]);
        assert_eq!(dominant_period(&series, 30), 20);
    }

    #[test]
    fn acf_constant_series_safe() {
        let acf = autocorrelation(&[5.0; 50], 5);
        assert!(acf.iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "multiple of t_out")]
    fn horizon_rejects_misaligned_input() {
        let _ = HorizonMetrics::compute(&[1.0; 5], &[1.0; 5], 2);
    }
}
