//! Rolling (online) DTW: warm-started banded frontiers and incremental
//! top-q neighbour maintenance for streams where series grow a window at a
//! time and sensors join or leave.
//!
//! Two pieces, both **exact** — every result is bitwise identical to the
//! batch computation it replaces:
//!
//! * [`DtwFrontier`] stores the last row and last column of the banded DP
//!   table of [`crate::dtw_banded`]. When either series grows, only the
//!   L-shaped region of new cells is computed: old rows are extended into
//!   the new columns from the stored last column, then the new rows run
//!   from the extended previous row. Each DP cell uses the recurrence
//!   `cost + prev[j].min(curr[j-1]).min(prev[j-1])` — character-identical
//!   to the batch kernel — and every cell is computed exactly once either
//!   way, so the appended distance is bitwise equal to a from-scratch
//!   [`crate::dtw_banded`] call. The warm path requires the effective band
//!   (`band.max(|n−m|)`) to be unchanged; otherwise the frontier silently
//!   recomputes in full.
//!
//! * [`RollingNeighbors`] maintains each alive node's exact top-q DTW
//!   neighbour row under appends, inserts and removes. A refresh seeds the
//!   best-q set by *appending* the previous row's frontiers — O(Δ·band)
//!   each — so the pruning threshold is tight before any other candidate
//!   is scanned, then runs an extended admissible cascade over the
//!   remaining alive candidates: first the *stale-frontier bound* (the max
//!   of append-invariant DP row minimums captured the last time the full
//!   kernel ran on the pair — a single float compare that keeps pruning
//!   across refreshes, because DP rows `r` with `r + band <= m` never
//!   change when either series grows), then PR 7's LB_Kim, LB_Keogh and
//!   early-abandoning kernel. The Keogh bound is served from a
//!   per-ordered-pair *cached stable prefix*: envelope entries below
//!   `len − band` can never change under appends, so the prefix of the
//!   Keogh sum over them is computed once per growth and re-used with a
//!   single float compare. Final rows are uniquely determined by the
//!   `(distance, index)` total order over kernel-computed distances, so
//!   any admissible pruning schedule — including this one — selects rows
//!   bitwise equal to [`crate::dtw_top_q`] over the alive set.

use crate::prune::{
    dtw_envelope, dtw_envelope_extend, lb_kim, threshold_cut, BestQ, DtwEnvelope, PruneStats,
    SparseNeighbors,
};
use stsm_tensor::telemetry;

/// How far past the abandon threshold an abandoned kernel run keeps
/// extending the DP to strengthen the banked stale-frontier bound (see
/// [`DtwFrontier::new_abandon_with_lb`]). Purely a work/validity trade-off;
/// any value yields bitwise-identical neighbour rows.
const LB_LOOKAHEAD: f32 = 4.0;

/// Warm-startable banded DTW state between one ordered pair of series:
/// the distance plus the DP-table frontier (last row and last column)
/// needed to extend the computation when either series grows.
#[derive(Clone, Debug)]
pub struct DtwFrontier {
    band: usize,
    n: usize,
    m: usize,
    /// `D[n][0..=m]` — the final DP row (out-of-band cells hold `inf`).
    last_row: Vec<f32>,
    /// `D[0..=n][m]` — the final DP column.
    last_col: Vec<f32>,
    dist: f32,
}

impl DtwFrontier {
    /// Computes the banded DTW of `a` vs `b`, capturing the frontier. The
    /// distance is bitwise equal to `dtw_banded(a, b, band)`.
    pub fn new(a: &[f32], b: &[f32], band: usize) -> DtwFrontier {
        Self::new_abandon(a, b, band, f32::INFINITY).expect("cut = inf never abandons")
    }

    /// [`DtwFrontier::new`] with the early-abandoning row-minimum check of
    /// the pruning cascade: returns `None` as soon as a DP row's minimum
    /// exceeds `cut`. A `Some` result is bitwise equal to the unabandoned
    /// computation.
    pub fn new_abandon(a: &[f32], b: &[f32], band: usize, cut: f32) -> Option<DtwFrontier> {
        Self::new_abandon_with_lb(a, b, band, cut).0
    }

    /// [`DtwFrontier::new_abandon`] that additionally returns a *stable
    /// lower bound*: the maximum row-minimum over DP rows `r` with
    /// `r + band <= m`, or `0.0` when no such row was computed (degenerate
    /// lengths, or the effective band already exceeds `band`).
    ///
    /// Any warping path visits every row, and a row `r` with
    /// `r + band <= m` has its banded window `[r − band, r + band]` fully
    /// inside the current columns — so its cells are pure functions of the
    /// prefixes `a[..r+band]`, `b[..r+band]` and never change when either
    /// series grows (as long as the effective band stays `band`). The
    /// returned value is therefore an admissible lower bound on the banded
    /// DTW of *every future grown version* of this pair with
    /// `|n' − m'| <= band`. Abandoned runs still return the bound
    /// accumulated so far (including the abandoning row when stable).
    fn new_abandon_with_lb(
        a: &[f32],
        b: &[f32],
        band: usize,
        cut: f32,
    ) -> (Option<DtwFrontier>, f32) {
        let (n, m) = (a.len(), b.len());
        if n == 0 || m == 0 {
            let inf = f32::INFINITY;
            let mut last_row = vec![inf; m + 1];
            let mut last_col = vec![inf; n + 1];
            if n == 0 {
                last_row[0] = 0.0;
            }
            if m == 0 {
                last_col[0] = 0.0;
            }
            let dist = if n == m { 0.0 } else { inf };
            return (Some(DtwFrontier { band, n, m, last_row, last_col, dist }), 0.0);
        }
        let band_eff = band.max(n.abs_diff(m));
        // Rows are only append-stable when the band was not widened by a
        // length difference; a widened band would shift every window.
        let band_ok = band_eff == band;
        let mut stable_lb = 0.0f32;
        let inf = f32::INFINITY;
        let mut prev = vec![inf; m + 1];
        let mut curr = vec![inf; m + 1];
        prev[0] = 0.0;
        let mut last_col = Vec::with_capacity(n + 1);
        last_col.push(inf); // D[0][m], m >= 1
        for i in 1..=n {
            curr.fill(inf);
            let lo = i.saturating_sub(band_eff).max(1);
            let hi = i.saturating_add(band_eff).min(m);
            let mut row_min = inf;
            for j in lo..=hi {
                let cost = (a[i - 1] - b[j - 1]).abs();
                let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
                curr[j] = cost + best;
                row_min = row_min.min(curr[j]);
            }
            if band_ok && i.saturating_add(band) <= m {
                stable_lb = stable_lb.max(row_min);
            }
            if row_min > cut {
                // The result is decided (abandoned), but a bound barely
                // above `cut` goes stale as soon as the threshold grows.
                // Bank a stronger one by extending the DP until the row
                // minimum clears a lookahead multiple of the cut: row
                // minimums grow with the row index, so this costs a bounded
                // factor over the plain abandon and keeps the pair pruned
                // for many future refreshes.
                if band_ok {
                    let target = cut * LB_LOOKAHEAD;
                    let mut lb_row_min = row_min;
                    let mut i = i;
                    while lb_row_min <= target && i < n {
                        i += 1;
                        std::mem::swap(&mut prev, &mut curr);
                        curr.fill(inf);
                        let lo = i.saturating_sub(band_eff).max(1);
                        let hi = i.saturating_add(band_eff).min(m);
                        lb_row_min = inf;
                        for j in lo..=hi {
                            let cost = (a[i - 1] - b[j - 1]).abs();
                            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
                            curr[j] = cost + best;
                            lb_row_min = lb_row_min.min(curr[j]);
                        }
                        if i.saturating_add(band) <= m {
                            stable_lb = stable_lb.max(lb_row_min);
                        }
                    }
                }
                return (None, stable_lb);
            }
            last_col.push(curr[m]);
            std::mem::swap(&mut prev, &mut curr);
        }
        let dist = prev[m];
        (Some(DtwFrontier { band, n, m, last_row: prev, last_col, dist }), stable_lb)
    }

    /// The DTW distance at the current lengths.
    pub fn dist(&self) -> f32 {
        self.dist
    }

    /// Series lengths `(n, m)` the frontier currently covers.
    pub fn lens(&self) -> (usize, usize) {
        (self.n, self.m)
    }

    /// Extends the frontier to the grown series `a` (length ≥ stored `n`)
    /// and `b` (length ≥ stored `m`), whose stored-length prefixes must be
    /// unchanged, and returns the new distance — bitwise equal to
    /// `dtw_banded(a, b, band)`. Only the new DP cells are computed when
    /// the effective band is unchanged; degenerate or band-shifting
    /// transitions fall back to a full recompute.
    pub fn append(&mut self, a: &[f32], b: &[f32]) -> f32 {
        let (n1, m1) = (a.len(), b.len());
        assert!(n1 >= self.n && m1 >= self.m, "append cannot shrink a series");
        if n1 == self.n && m1 == self.m {
            return self.dist;
        }
        // The warm path is valid only when every old cell was computed
        // under the same effective band as the grown problem requires.
        if self.n == 0
            || self.m == 0
            || self.n.abs_diff(self.m) > self.band
            || n1.abs_diff(m1) > self.band
        {
            *self = DtwFrontier::new(a, b, self.band);
            return self.dist;
        }
        let (n0, m0) = (self.n, self.m);
        let inf = f32::INFINITY;

        // Phase 1: extend old rows 1..=n0 into the new columns m0+1..=m1.
        // `ext_*` rows cover columns m0..=m1 (index j − m0); column m0 is
        // read from the stored last column.
        let width = m1 - m0 + 1;
        let mut ext_prev = vec![inf; width];
        ext_prev[0] = self.last_col[0];
        let mut ext_curr = vec![inf; width];
        let mut new_last_col = Vec::with_capacity(n1 + 1);
        new_last_col.push(self.last_col[0]); // D[0][m0] = D[0][m1] = inf for m ≥ 1
        for i in 1..=n0 {
            ext_curr.fill(inf);
            ext_curr[0] = self.last_col[i];
            let lo = i.saturating_sub(self.band).max(m0 + 1);
            let hi = i.saturating_add(self.band).min(m1);
            for j in lo..=hi {
                let cost = (a[i - 1] - b[j - 1]).abs();
                let best = ext_prev[j - m0].min(ext_curr[j - 1 - m0]).min(ext_prev[j - 1 - m0]);
                ext_curr[j - m0] = cost + best;
            }
            new_last_col.push(ext_curr[width - 1]);
            std::mem::swap(&mut ext_prev, &mut ext_curr);
        }

        // Phase 2: new rows n0+1..=n1 over the full banded column range,
        // starting from row n0 stitched together out of the stored last
        // row and its phase-1 extension.
        let mut prev_full = Vec::with_capacity(m1 + 1);
        prev_full.extend_from_slice(&self.last_row);
        prev_full.extend_from_slice(&ext_prev[1..]);
        let mut curr_full = vec![inf; m1 + 1];
        for i in (n0 + 1)..=n1 {
            curr_full.fill(inf);
            let lo = i.saturating_sub(self.band).max(1);
            let hi = i.saturating_add(self.band).min(m1);
            for j in lo..=hi {
                let cost = (a[i - 1] - b[j - 1]).abs();
                let best = prev_full[j].min(curr_full[j - 1]).min(prev_full[j - 1]);
                curr_full[j] = cost + best;
            }
            new_last_col.push(curr_full[m1]);
            std::mem::swap(&mut prev_full, &mut curr_full);
        }

        self.dist = prev_full[m1];
        self.last_row = prev_full;
        self.last_col = new_last_col;
        self.n = n1;
        self.m = m1;
        self.dist
    }
}

/// Cached admissible bounds for one ordered pair, both monotone under
/// appends:
///
/// * `sum`/`upto` — the stable prefix of the LB_Keogh sum: envelope
///   deviations over entries `[0, upto)`, where `upto` never passes the
///   point at which envelope entries could still change.
/// * `dtw` — the stable-row lower bound captured the last time the full
///   kernel ran on this pair (see [`DtwFrontier::new_abandon_with_lb`]):
///   a max of append-invariant DP row minimums, so it lower-bounds every
///   future grown version of the pair for one float compare.
#[derive(Clone, Copy, Debug, Default)]
struct CachedLb {
    sum: f32,
    upto: u32,
    dtw: f32,
}

struct Slot {
    alive: bool,
    series: Vec<f32>,
    env: DtwEnvelope,
    row: Vec<RowEntry>,
    /// `lb[j]` caches the Keogh stable prefix of this slot's series against
    /// slot `j`'s envelope; grown lazily, default `{0, 0}` is admissible.
    lb: Vec<CachedLb>,
}

struct RowEntry {
    j: u32,
    d: f32,
    frontier: DtwFrontier,
}

/// Incrementally maintained exact top-q DTW neighbour rows over a mutable
/// population of growing series.
///
/// Slots are identified by stable ids: [`RollingNeighbors::insert`] returns
/// a fresh id, [`RollingNeighbors::remove`] retires one forever (ids are
/// never reused). Mutations ([`RollingNeighbors::append`], insert, remove)
/// take effect on the neighbour rows at the next
/// [`RollingNeighbors::refresh`], which re-ranks every alive node exactly:
/// the resulting rows are bitwise identical to [`crate::dtw_top_q`] run
/// from scratch over the alive series (see [`RollingNeighbors::to_sparse`]).
pub struct RollingNeighbors {
    band: usize,
    q: usize,
    slots: Vec<Slot>,
    n_alive: usize,
    stats: PruneStats,
    /// Candidates discarded by the cached stale-frontier DTW bound — the
    /// rolling-only stage 0 of the cascade, counted separately from
    /// [`PruneStats`] so batch/rolling cascade numbers stay comparable.
    stale_lb_pruned: u64,
    refreshes: u64,
}

impl RollingNeighbors {
    /// Empty structure with the given Sakoe–Chiba half-width and top-q.
    pub fn new(band: usize, q: usize) -> RollingNeighbors {
        assert!(q >= 1, "top-q requires q >= 1");
        RollingNeighbors {
            band,
            q,
            slots: Vec::new(),
            n_alive: 0,
            stats: PruneStats::default(),
            stale_lb_pruned: 0,
            refreshes: 0,
        }
    }

    /// Bulk constructor: inserts every series and runs one refresh.
    pub fn from_series(series: &[Vec<f32>], band: usize, q: usize) -> RollingNeighbors {
        let mut rn = RollingNeighbors::new(band, q);
        for s in series {
            rn.insert(s.clone());
        }
        rn.refresh();
        rn
    }

    /// Adds a new series; returns its stable slot id. Rows pick it up at
    /// the next [`RollingNeighbors::refresh`].
    pub fn insert(&mut self, series: Vec<f32>) -> usize {
        let env = dtw_envelope(&series, self.band);
        self.slots.push(Slot { alive: true, series, env, row: Vec::new(), lb: Vec::new() });
        self.n_alive += 1;
        self.slots.len() - 1
    }

    /// Retires a slot. Its id is never reused; other rows drop it at the
    /// next [`RollingNeighbors::refresh`].
    pub fn remove(&mut self, id: usize) {
        let s = &mut self.slots[id];
        assert!(s.alive, "slot {id} already removed");
        s.alive = false;
        s.series = Vec::new();
        s.env = dtw_envelope(&[], self.band);
        s.row = Vec::new();
        s.lb = Vec::new();
        self.n_alive -= 1;
    }

    /// Appends samples to an alive slot's series, extending its envelope
    /// incrementally (bitwise equal to a rebuild).
    pub fn append(&mut self, id: usize, suffix: &[f32]) {
        let band = self.band;
        let s = &mut self.slots[id];
        assert!(s.alive, "cannot append to removed slot {id}");
        s.series.extend_from_slice(suffix);
        dtw_envelope_extend(&mut s.env, &s.series, band);
    }

    /// Number of alive slots.
    pub fn len_alive(&self) -> usize {
        self.n_alive
    }

    /// True when no slot is alive.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// True when `id` refers to an alive slot.
    pub fn is_alive(&self, id: usize) -> bool {
        self.slots.get(id).is_some_and(|s| s.alive)
    }

    /// Alive slot ids, ascending.
    pub fn alive_ids(&self) -> Vec<u32> {
        self.slots.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| i as u32).collect()
    }

    /// Current series of a slot (empty once removed).
    pub fn series(&self, id: usize) -> &[f32] {
        &self.slots[id].series
    }

    /// Neighbour row of a slot as of the last refresh: `(slot id,
    /// distance)` ascending by `(distance, id)`.
    pub fn row(&self, id: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.slots[id].row.iter().map(|e| (e.j, e.d))
    }

    /// Cumulative cascade counters across all refreshes.
    pub fn stats(&self) -> PruneStats {
        self.stats
    }

    /// Candidates discarded by the stale-frontier bound across all
    /// refreshes (stage 0 of the rolling cascade; not part of
    /// [`RollingNeighbors::stats`]).
    pub fn stale_lb_pruned(&self) -> u64 {
        self.stale_lb_pruned
    }

    /// Re-ranks every alive node against the current alive population.
    /// Serial and deterministic; after it returns, every row is bitwise
    /// identical to what [`crate::dtw_top_q`] would produce from scratch
    /// on the alive series.
    pub fn refresh(&mut self) {
        let _span = telemetry::span("rolling.refresh");
        let before = self.stats;
        let before_stale = self.stale_lb_pruned;
        let alive = self.alive_ids();
        for &i in &alive {
            self.refresh_row(i as usize, &alive);
        }
        self.refreshes += 1;
        telemetry::count("rolling.refresh", 1);
        telemetry::count("rolling.lb_kim_pruned", self.stats.lb_kim_pruned - before.lb_kim_pruned);
        telemetry::count(
            "rolling.lb_keogh_pruned",
            self.stats.lb_keogh_pruned - before.lb_keogh_pruned,
        );
        telemetry::count("rolling.full_dtw", self.stats.full_dtw - before.full_dtw);
        telemetry::count("rolling.stale_lb_pruned", self.stale_lb_pruned - before_stale);
    }

    /// Compacts the alive population: returns the ascending alive slot ids
    /// and the neighbour structure re-indexed onto `0..n_alive` — directly
    /// comparable (bitwise) with `dtw_top_q(alive_series, band, q)`.
    pub fn to_sparse(&self) -> (Vec<u32>, SparseNeighbors) {
        let alive = self.alive_ids();
        let mut compact = vec![u32::MAX; self.slots.len()];
        for (k, &id) in alive.iter().enumerate() {
            compact[id as usize] = k as u32;
        }
        let rows: Vec<Vec<(u32, f32)>> = alive
            .iter()
            .map(|&id| {
                self.slots[id as usize].row.iter().map(|e| (compact[e.j as usize], e.d)).collect()
            })
            .collect();
        (alive, SparseNeighbors::from_rows(self.q, rows))
    }

    fn refresh_row(&mut self, i: usize, alive: &[u32]) {
        let cand_count = alive.len() - 1;
        let mut best = BestQ::new(self.q.min(cand_count.max(1)));
        let old_row = std::mem::take(&mut self.slots[i].row);
        let mut fronts: Vec<RowEntry> = Vec::with_capacity(old_row.len() + 8);
        let mut seeded: Vec<u32> = Vec::with_capacity(old_row.len());
        // Warm seed: the previous row members are strong candidates; an
        // O(Δ·band) frontier append per member fills the best-q set with
        // exact distances before any scan, so the pruning threshold is
        // tight from the first unseen candidate.
        for mut e in old_row {
            if !self.slots[e.j as usize].alive {
                continue;
            }
            let d = e.frontier.append(&self.slots[i].series, &self.slots[e.j as usize].series);
            e.d = d;
            best.offer(e.j, d);
            seeded.push(e.j);
            fronts.push(e);
        }
        seeded.sort_unstable();
        for &j in alive {
            let ju = j as usize;
            if ju == i || seeded.binary_search(&j).is_ok() {
                continue;
            }
            let Some(tau) = best.threshold() else {
                // Below capacity: every candidate enters; no pruning.
                self.stats.full_dtw += 1;
                let (f, lb) = DtwFrontier::new_abandon_with_lb(
                    &self.slots[i].series,
                    &self.slots[ju].series,
                    self.band,
                    f32::INFINITY,
                );
                self.note_pair_lb(i, ju, lb);
                let f = f.expect("cut = inf never abandons");
                best.offer(j, f.dist());
                fronts.push(RowEntry { j, d: f.dist(), frontier: f });
                continue;
            };
            let cut = threshold_cut(tau);
            // Stage 0: the stale-frontier bound from this pair's last kernel
            // run — free, and under appends it keeps pruning as long as the
            // pair stays comfortably outside the row.
            if self.stale_lb_applies(i, ju) && self.slots[i].lb[ju].dtw > cut {
                self.stale_lb_pruned += 1;
                continue;
            }
            let kim = lb_kim(&self.slots[i].series, &self.slots[ju].series);
            if kim > cut {
                self.stats.lb_kim_pruned += 1;
                continue;
            }
            if self.keogh_prunes(i, ju, cut) || self.keogh_prunes(ju, i, cut) {
                self.stats.lb_keogh_pruned += 1;
                continue;
            }
            self.stats.full_dtw += 1;
            let (f, lb) = DtwFrontier::new_abandon_with_lb(
                &self.slots[i].series,
                &self.slots[ju].series,
                self.band,
                cut,
            );
            self.note_pair_lb(i, ju, lb);
            if let Some(f) = f {
                best.offer(j, f.dist());
                fronts.push(RowEntry { j, d: f.dist(), frontier: f });
            }
        }
        let chosen = best.into_sorted();
        let mut row = Vec::with_capacity(chosen.len());
        for (j, d) in chosen {
            let pos = fronts
                .iter()
                .position(|e| e.j == j)
                .expect("every offered candidate carries a frontier");
            let mut e = fronts.swap_remove(pos);
            e.d = d;
            row.push(e);
        }
        self.slots[i].row = row;
    }

    /// True when the cached stale-frontier bound for the ordered pair
    /// `(a, b)` is currently admissible: it was captured under effective
    /// band == `band`, which must still hold for the grown lengths (a
    /// length difference beyond the band widens every DP window and
    /// invalidates the stored row minimums).
    fn stale_lb_applies(&self, a: usize, b: usize) -> bool {
        self.slots[a].lb.len() > b
            && self.slots[a].series.len().abs_diff(self.slots[b].series.len()) <= self.band
    }

    /// Records a stale-frontier bound from a kernel run on the ordered pair
    /// `(a, b)`. Bounds are monotone under appends, so keep the max.
    fn note_pair_lb(&mut self, a: usize, b: usize, lb: f32) {
        if lb <= 0.0 {
            return;
        }
        if self.slots[a].lb.len() <= b {
            self.slots[a].lb.resize(b + 1, CachedLb::default());
        }
        let c = &mut self.slots[a].lb[b];
        c.dtw = c.dtw.max(lb);
    }

    /// Admissible LB_Keogh check of slot `a`'s series against slot `b`'s
    /// envelope, served from the cached stable prefix: one float compare in
    /// the common case, advancing the cache and scanning only the volatile
    /// tail otherwise. Returns true when the bound proves the pair cannot
    /// beat `cut`.
    fn keogh_prunes(&mut self, a: usize, b: usize, cut: f32) -> bool {
        let la = self.slots[a].series.len();
        let lb_ = self.slots[b].series.len();
        if la != lb_ || la == 0 {
            // Keogh applies to equal-length series only (matching lb_keogh).
            return false;
        }
        // Envelope entries of `b` strictly below len − band are final under
        // appends; the prefix sum over them never goes stale.
        let stable = la.min(lb_.saturating_sub(self.band)) as u32;
        if self.slots[a].lb.len() <= b {
            self.slots[a].lb.resize(b + 1, CachedLb::default());
        }
        let mut c = self.slots[a].lb[b];
        if c.sum > cut {
            return true;
        }
        if c.upto < stable {
            let mut sum = c.sum;
            {
                let from = c.upto as usize;
                let to = stable as usize;
                let qs = &self.slots[a].series[from..to];
                let env = &self.slots[b].env;
                let ups = &env.upper[from..to];
                let lows = &env.lower[from..to];
                for (&q, (&u, &l)) in qs.iter().zip(ups.iter().zip(lows)) {
                    if q > u {
                        sum += q - u;
                    } else if q < l {
                        sum += l - q;
                    }
                }
            }
            c = CachedLb { sum, upto: stable, dtw: c.dtw };
            self.slots[a].lb[b] = c;
            if c.sum > cut {
                return true;
            }
        }
        // Volatile tail: entries whose envelope windows still move under
        // appends. Early-abandon like lb_keogh_beats.
        let from = c.upto as usize;
        let qs = &self.slots[a].series[from..la];
        let env = &self.slots[b].env;
        let ups = &env.upper[from..la];
        let lows = &env.lower[from..la];
        let mut sum = c.sum;
        for (&q, (&u, &l)) in qs.iter().zip(ups.iter().zip(lows)) {
            if q > u {
                sum += q - u;
            } else if q < l {
                sum += l - q;
            }
            if sum > cut {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw_banded, dtw_banded_abandon};
    use crate::dtw_top_q;

    fn wave(seed: u64, t: usize) -> Vec<f32> {
        (0..t)
            .map(|i| {
                let s = seed as f32;
                ((i as f32) * (0.11 + 0.03 * (s % 5.0))).sin() + (s * 0.37).cos() * 0.5
            })
            .collect()
    }

    #[test]
    fn frontier_matches_batch_on_construction() {
        for (n, m, band) in [(12, 12, 3), (9, 14, 8), (20, 20, 0), (7, 7, usize::MAX), (1, 1, 2)] {
            let a = wave(1, n);
            let b = wave(2, m);
            let f = DtwFrontier::new(&a, &b, band);
            assert_eq!(f.dist().to_bits(), dtw_banded(&a, &b, band).to_bits(), "{n} {m} {band}");
        }
    }

    #[test]
    fn frontier_append_bitwise_equals_batch() {
        let band = 4;
        let a_full = wave(3, 60);
        let b_full = wave(4, 60);
        let mut f = DtwFrontier::new(&a_full[..24], &b_full[..24], band);
        // Grow both series in uneven chunks, staying within the band.
        let growths = [(28, 26), (30, 30), (31, 33), (45, 45), (60, 60)];
        for &(na, nb) in &growths {
            let d = f.append(&a_full[..na], &b_full[..nb]);
            let want = dtw_banded(&a_full[..na], &b_full[..nb], band);
            assert_eq!(d.to_bits(), want.to_bits(), "grown to ({na}, {nb})");
        }
    }

    #[test]
    fn frontier_append_from_empty_and_band_shift() {
        // Degenerate starts and effective-band shifts take the recompute
        // path and must still agree with the batch kernel.
        let a_full = wave(5, 40);
        let b_full = wave(6, 40);
        for band in [0usize, 2, usize::MAX] {
            let mut f = DtwFrontier::new(&[], &[], band);
            for &(na, nb) in &[(0usize, 3usize), (5, 3), (12, 12), (40, 35), (40, 40)] {
                let d = f.append(&a_full[..na], &b_full[..nb]);
                let want = dtw_banded(&a_full[..na], &b_full[..nb], band);
                assert_eq!(d.to_bits(), want.to_bits(), "band {band} ({na}, {nb})");
            }
        }
    }

    #[test]
    fn frontier_abandon_parity_with_kernel() {
        let a = wave(7, 30);
        let b = wave(8, 30);
        for band in [2usize, 6] {
            let full = dtw_banded(&a, &b, band);
            for cut in [0.0f32, full * 0.5, full, full * 2.0] {
                let got = DtwFrontier::new_abandon(&a, &b, band, cut).map(|f| f.dist().to_bits());
                let want = dtw_banded_abandon(&a, &b, band, cut).map(f32::to_bits);
                assert_eq!(got, want, "band {band} cut {cut}");
            }
        }
    }

    #[test]
    fn rolling_rows_match_from_scratch_after_stream_of_mutations() {
        let band = 3;
        let q = 4;
        let full: Vec<Vec<f32>> = (0..14).map(|s| wave(s, 64)).collect();
        let mut rn = RollingNeighbors::from_series(
            &full.iter().map(|s| s[..32].to_vec()).collect::<Vec<_>>(),
            band,
            q,
        );
        let mut lens: Vec<usize> = vec![32; 14];
        let mut alive: Vec<usize> = (0..14).collect();

        let check = |rn: &RollingNeighbors, alive: &[usize], lens: &[usize]| {
            let series: Vec<Vec<f32>> =
                alive.iter().map(|&id| full[id][..lens[id]].to_vec()).collect();
            let (want, _) = dtw_top_q(&series, band, q);
            let (ids, got) = rn.to_sparse();
            assert_eq!(ids, alive.iter().map(|&i| i as u32).collect::<Vec<_>>());
            assert_eq!(got, want);
        };
        check(&rn, &alive, &lens);

        // Append a window to everyone.
        for &id in &alive {
            rn.append(id, &full[id][lens[id]..lens[id] + 8]);
            lens[id] += 8;
        }
        rn.refresh();
        check(&rn, &alive, &lens);

        // Remove two sensors, append again.
        for id in [3usize, 9] {
            rn.remove(id);
            alive.retain(|&x| x != id);
        }
        for &id in &alive {
            rn.append(id, &full[id][lens[id]..lens[id] + 8]);
            lens[id] += 8;
        }
        rn.refresh();
        check(&rn, &alive, &lens);

        // A refresh with no mutations is a no-op on the rows.
        rn.refresh();
        check(&rn, &alive, &lens);
    }

    #[test]
    fn rolling_handles_insert_mid_stream() {
        let band = 2;
        let q = 3;
        let full: Vec<Vec<f32>> = (20..28).map(|s| wave(s, 48)).collect();
        let mut rn = RollingNeighbors::new(band, q);
        for s in full.iter().take(5) {
            rn.insert(s[..48].to_vec());
        }
        rn.refresh();
        for s in full.iter().skip(5) {
            rn.insert(s[..48].to_vec());
        }
        rn.refresh();
        let (ids, got) = rn.to_sparse();
        assert_eq!(ids.len(), 8);
        let (want, _) = dtw_top_q(&full, band, q);
        assert_eq!(got, want);
    }

    #[test]
    fn rolling_tiny_populations() {
        let mut rn = RollingNeighbors::new(2, 4);
        let a = rn.insert(wave(1, 10));
        rn.refresh();
        assert_eq!(rn.row(a).count(), 0);
        let b = rn.insert(wave(2, 10));
        rn.refresh();
        assert_eq!(rn.row(a).count(), 1);
        rn.remove(b);
        rn.refresh();
        assert_eq!(rn.row(a).count(), 0);
        rn.remove(a);
        rn.refresh();
        assert!(rn.is_empty());
    }

    #[test]
    fn envelope_extend_bitwise_equals_rebuild() {
        let s = wave(9, 50);
        for band in [0usize, 1, 4, 30, usize::MAX] {
            let mut env = dtw_envelope(&s[..20], band);
            for len in [21usize, 25, 33, 50] {
                dtw_envelope_extend(&mut env, &s[..len], band);
                let want = dtw_envelope(&s[..len], band);
                let eq = env.lower.iter().zip(&want.lower).all(|(a, b)| a.to_bits() == b.to_bits())
                    && env.upper.iter().zip(&want.upper).all(|(a, b)| a.to_bits() == b.to_bits())
                    && env.len() == want.len();
                assert!(eq, "band {band} len {len}");
            }
        }
    }
}
