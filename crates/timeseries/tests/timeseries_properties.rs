//! Property-based tests for the timeseries crate.

use proptest::prelude::*;
use stsm_timeseries::{autocorrelation, daily_profile, sliding_windows, Metrics, Scaler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rmse_dominates_mae(
        pred in proptest::collection::vec(-100f32..100.0, 4..64),
        truth in proptest::collection::vec(-100f32..100.0, 4..64),
    ) {
        let n = pred.len().min(truth.len());
        let m = Metrics::compute(&pred[..n], &truth[..n]);
        // Jensen: RMSE >= MAE always.
        prop_assert!(m.rmse + 1e-6 >= m.mae, "rmse {} < mae {}", m.rmse, m.mae);
        prop_assert!(m.rmse >= 0.0 && m.mae >= 0.0 && m.mape >= 0.0);
    }

    #[test]
    fn daily_profile_is_linear(
        a in proptest::collection::vec(-10f32..10.0, 48),
        b in proptest::collection::vec(-10f32..10.0, 48),
        alpha in 0f32..1.0,
    ) {
        // profile(alpha·a + (1-alpha)·b) == alpha·profile(a) + (1-alpha)·profile(b)
        let blend: Vec<f32> =
            a.iter().zip(&b).map(|(&x, &y)| alpha * x + (1.0 - alpha) * y).collect();
        let pa = daily_profile(&a, 12, 2);
        let pb = daily_profile(&b, 12, 2);
        let pblend = daily_profile(&blend, 12, 2);
        for i in 0..pa.len() {
            let expect = alpha * pa[i] + (1.0 - alpha) * pb[i];
            prop_assert!((pblend[i] - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn windows_tile_the_series(total in 10usize..100, t_in in 1usize..6, t_out in 1usize..6) {
        let ws = sliding_windows(total, t_in, t_out, 1);
        // Every window fits; consecutive windows advance by exactly 1.
        for w in &ws {
            prop_assert!(w.end() <= total);
            prop_assert_eq!(w.target_start(), w.input_start + t_in);
        }
        for pair in ws.windows(2) {
            prop_assert_eq!(pair[1].input_start, pair[0].input_start + 1);
        }
        // Count is exact.
        let expected = (total + 1).saturating_sub(t_in + t_out);
        prop_assert_eq!(ws.len(), expected);
    }

    #[test]
    fn scaler_standardizes(values in proptest::collection::vec(-1e3f32..1e3, 8..128)) {
        let s = Scaler::fit(&values);
        let mut scaled = values.clone();
        s.transform_slice(&mut scaled);
        let mean: f64 = scaled.iter().map(|&v| v as f64).sum::<f64>() / scaled.len() as f64;
        prop_assert!(mean.abs() < 1e-2, "standardized mean {mean}");
        let var: f64 =
            scaled.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / scaled.len() as f64;
        // Unit variance unless the input was (near-)constant.
        if s.std > 1e-3 {
            prop_assert!((var - 1.0).abs() < 1e-2, "standardized var {var}");
        }
    }

    #[test]
    fn autocorrelation_bounded(series in proptest::collection::vec(-10f32..10.0, 16..64)) {
        let acf = autocorrelation(&series, 8);
        prop_assert_eq!(acf.len(), 9);
        prop_assert!((acf[0] - 1.0).abs() < 1e-9);
        for &v in &acf {
            prop_assert!(v.abs() <= 1.0 + 1e-6, "acf out of range: {v}");
        }
    }
}
