//! Closed-form checks for the §5.1.3 accuracy metrics: every value is
//! compared against a hand-computed number, including the degenerate cases
//! (constant targets, near-zero MAPE targets, empty inputs) that the
//! in-crate unit tests leave uncovered.

use stsm_timeseries::Metrics;

#[test]
fn four_point_example_matches_hand_computation() {
    let pred = vec![1.0f32, 2.0, 3.0, 5.0];
    let truth = vec![2.0f32, 2.0, 4.0, 1.0];
    let m = Metrics::compute(&pred, &truth);
    // errors: -1, 0, -1, 4  ->  se = 1 + 0 + 1 + 16 = 18
    assert!((m.rmse - (18.0f64 / 4.0).sqrt()).abs() < 1e-12);
    assert!((m.mae - 6.0 / 4.0).abs() < 1e-12);
    // |d/t|: 1/2, 0/2, 1/4, 4/1 -> mean = (0.5 + 0.0 + 0.25 + 4.0) / 4
    assert!((m.mape - 4.75 / 4.0).abs() < 1e-12);
    // truth mean 2.25; ss_tot = 0.0625 + 0.0625 + 3.0625 + 1.5625 = 4.75
    assert!((m.r2 - (1.0 - 18.0 / 4.75)).abs() < 1e-12);
}

#[test]
fn negative_targets_use_absolute_percentage_error() {
    let m = Metrics::compute(&[-1.0, -6.0], &[-2.0, -4.0]);
    // |d/t|: |1 / -2| = 0.5, |-2 / -4| = 0.5
    assert!((m.mape - 0.5).abs() < 1e-12);
    assert!((m.mae - 1.5).abs() < 1e-12);
    assert!((m.rmse - (2.5f64).sqrt()).abs() < 1e-12);
}

#[test]
fn constant_target_makes_r2_undefined_not_infinite() {
    // ss_tot = 0: R² has no meaning. The contract is NaN, never ±inf or a
    // division panic, and the other three metrics stay valid.
    let m = Metrics::compute(&[2.0, 3.0, 4.0], &[3.0, 3.0, 3.0]);
    assert!(m.r2.is_nan(), "constant target must give NaN R², got {}", m.r2);
    assert!((m.rmse - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    assert!((m.mae - 2.0 / 3.0).abs() < 1e-12);
    assert!((m.mape - (1.0 / 3.0 + 0.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
}

#[test]
fn single_sample_is_a_constant_target() {
    let m = Metrics::compute(&[5.0], &[3.0]);
    assert_eq!(m.rmse, 2.0);
    assert_eq!(m.mae, 2.0);
    assert!((m.mape - 2.0 / 3.0).abs() < 1e-12);
    assert!(m.r2.is_nan());
}

#[test]
fn all_near_zero_targets_give_zero_mape() {
    // Every target is under the 1e-3 skip threshold: no term qualifies, and
    // the convention is 0.0 rather than NaN from 0/0.
    let m = Metrics::compute(&[1.0, -1.0, 2.0], &[0.0, 1e-4, -1e-4]);
    assert_eq!(m.mape, 0.0);
    assert!(m.rmse > 0.0 && m.mae > 0.0);
}

#[test]
fn threshold_boundary_is_strict() {
    // |t| must *exceed* 1e-3 to count; exactly 1e-3 is skipped.
    let m = Metrics::compute(&[1.0, 2.0], &[1e-3, 2.0]);
    assert!((m.mape - 0.0).abs() < 1e-12, "t = 1e-3 must be skipped, got mape {}", m.mape);
}

#[test]
#[should_panic(expected = "empty")]
fn empty_slices_panic() {
    let _ = Metrics::compute(&[], &[]);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn mismatched_lengths_panic() {
    let _ = Metrics::compute(&[1.0, 2.0], &[1.0]);
}

#[test]
#[should_panic]
fn average_of_nothing_panics() {
    let _ = Metrics::average(&[]);
}

#[test]
fn average_is_componentwise_mean() {
    let a = Metrics { rmse: 2.0, mae: 1.0, mape: 0.2, r2: 0.8 };
    let b = Metrics { rmse: 4.0, mae: 3.0, mape: 0.4, r2: 0.2 };
    let c = Metrics { rmse: 6.0, mae: 5.0, mape: 0.6, r2: -0.4 };
    let avg = Metrics::average(&[a, b, c]);
    assert!((avg.rmse - 4.0).abs() < 1e-12);
    assert!((avg.mae - 3.0).abs() < 1e-12);
    assert!((avg.mape - 0.4).abs() < 1e-12);
    assert!((avg.r2 - 0.2).abs() < 1e-12);
}
