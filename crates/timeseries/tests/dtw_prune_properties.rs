//! Property-based checks for the lower-bound pruning cascade (§3.4.1 at
//! scale): the bounds that let `dtw_top_q` skip full DTW evaluations must
//! be *admissible* — never exceed the true banded distance — or the sparse
//! top-q sets would silently diverge from the dense ranking.
//!
//! Three contracts:
//!
//! 1. `lb_kim ≤ lb_keogh` exactly (LB_Keogh takes the max with the endpoint
//!    bound by construction), and `lb_keogh ≤ dtw_banded` up to the same
//!    f32 rounding margin the pruner itself uses — so a bound can never
//!    evict a candidate the dense route would keep.
//! 2. For unequal-length series the Keogh sum does not apply; the bound
//!    falls back to LB_Kim, which is admissible for any warping path.
//! 3. `dtw_top_q` at N≈200 selects bitwise the same `(neighbour, distance)`
//!    rows as the dense `dtw_all_pairs` matrix sorted by
//!    `(distance, index)` and truncated — and restricting to an explicit
//!    candidate list matches the dense ranking filtered the same way.

use proptest::prelude::*;
use stsm_timeseries::{
    dtw_all_pairs, dtw_banded, dtw_envelope, dtw_top_q, dtw_top_q_with_candidates, lb_keogh, lb_kim,
};

/// The pruner prunes only when `lb > d·(1+1e-5) + 1e-6`; admissibility up
/// to that margin is therefore exactly what correctness requires.
fn admissible(lb: f32, d: f32) -> bool {
    lb <= d * (1.0 + 1e-5) + 1e-6
}

/// Dense reference ranking: full pairwise matrix, each row sorted by
/// `(distance, index)` and truncated to `q` — the pre-sparse route.
fn dense_top_q(profiles: &[Vec<f32>], band: usize, q: usize) -> Vec<Vec<(u32, f32)>> {
    let n = profiles.len();
    let d = dtw_all_pairs(profiles, band);
    (0..n)
        .map(|i| {
            let mut row: Vec<(u32, f32)> = (0..n as u32)
                .filter(|&j| j as usize != i)
                .map(|j| (j, d[i * n + j as usize]))
                .collect();
            row.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            row.truncate(q);
            row
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lower_bound_cascade_is_admissible(
        case in (2usize..48, 0usize..10).prop_flat_map(|(len, band)| (
            proptest::collection::vec(-50f32..50.0, len),
            proptest::collection::vec(-50f32..50.0, len),
            Just(band),
        )),
    ) {
        let (a, b, band) = case;
        let env_a = dtw_envelope(&a, band);
        let env_b = dtw_envelope(&b, band);
        let d = dtw_banded(&a, &b, band);
        // Chain order: LB_Keogh folds LB_Kim in via `max`, so the first
        // inequality is exact, not merely within the margin.
        let kim = lb_kim(&a, &b);
        for keogh in [lb_keogh(&a, &env_b), lb_keogh(&b, &env_a)] {
            prop_assert!(kim <= keogh, "lb_kim {} above lb_keogh {}", kim, keogh);
            prop_assert!(
                admissible(keogh, d),
                "inadmissible LB_Keogh: bound {} vs dtw_banded {} (band {})",
                keogh, d, band
            );
        }
        prop_assert!(admissible(kim, d), "inadmissible LB_Kim: {} vs {}", kim, d);
    }

    #[test]
    fn unequal_lengths_fall_back_to_the_endpoint_bound(
        a in proptest::collection::vec(-50f32..50.0, 1..24),
        b in proptest::collection::vec(-50f32..50.0, 25..40),
        band in 0usize..8,
    ) {
        // The Keogh sum needs aligned indices; on a length mismatch the
        // bound must degrade to exactly LB_Kim and stay admissible.
        let keogh = lb_keogh(&a, &dtw_envelope(&b, band));
        prop_assert_eq!(keogh.to_bits(), lb_kim(&a, &b).to_bits());
        prop_assert!(admissible(keogh, dtw_banded(&a, &b, band)));
    }

    #[test]
    fn envelope_bounds_contain_the_series(
        s in proptest::collection::vec(-50f32..50.0, 1..64),
        band in 0usize..12,
    ) {
        let env = dtw_envelope(&s, band);
        prop_assert_eq!(env.len(), s.len());
        for (i, &v) in s.iter().enumerate() {
            prop_assert!(env.lower[i] <= v && v <= env.upper[i]);
        }
        // Band 0 degenerates to the series itself.
        if band == 0 {
            for (i, &v) in s.iter().enumerate() {
                prop_assert_eq!(env.lower[i].to_bits(), v.to_bits());
                prop_assert_eq!(env.upper[i].to_bits(), v.to_bits());
            }
        }
    }
}

proptest! {
    // Each case runs a ~200-node dense all-pairs reference; a handful of
    // cases keeps the suite fast while still varying layout and band.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pruned_top_q_matches_the_dense_ranking_at_n200(
        profiles in proptest::collection::vec(
            proptest::collection::vec(-5f32..5.0, 36),
            190usize..210,
        ).prop_map(|rows| rows
            .into_iter()
            .map(|steps| {
                // Random walks, not iid noise: levels diverge across nodes
                // the way real daily profiles do, so the lower bounds have
                // something to prune. Iid series concentrate at one mutual
                // distance and the cascade degenerates to all-full-DTW.
                let mut level = 0.0f32;
                steps.into_iter().map(|s| { level += s; level }).collect::<Vec<f32>>()
            })
            .collect::<Vec<Vec<f32>>>()
        ),
        band in 2usize..8,
        q in 3usize..10,
    ) {
        let (sparse, stats) = dtw_top_q(&profiles, band, q);
        let dense = dense_top_q(&profiles, band, q);
        prop_assert_eq!(sparse.len(), dense.len());
        for (i, want) in dense.iter().enumerate() {
            let got: Vec<(u32, u32)> = sparse.row(i).map(|(j, d)| (j, d.to_bits())).collect();
            let want: Vec<(u32, u32)> =
                want.iter().map(|&(j, d)| (j, d.to_bits())).collect();
            prop_assert_eq!(got, want, "row {} diverged from the dense ranking", i);
        }
        // At this scale random series are mutually distant, so the cascade
        // must actually skip work — otherwise the sparse route is the dense
        // route with extra steps.
        prop_assert!(stats.full_dtw > 0);
        prop_assert!(
            stats.lb_kim_pruned + stats.lb_keogh_pruned > 0,
            "no candidate pruned across {} nodes", profiles.len()
        );
    }

    #[test]
    fn candidate_restricted_search_matches_the_filtered_dense_ranking(
        profiles in proptest::collection::vec(
            proptest::collection::vec(-30f32..30.0, 24),
            40usize..60,
        ),
        stride in 2usize..4,
        q in 2usize..6,
    ) {
        let n = profiles.len();
        let band = 4;
        // Deterministic sparse candidate lists: node i may only look at
        // nodes j with (i + j) divisible by `stride` — asymmetric on
        // purpose, like a spatial-k-NN restriction would be.
        let candidates: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                (0..n as u32).filter(|&j| j as usize != i && (i + j as usize).is_multiple_of(stride)).collect()
            })
            .collect();
        let (sparse, _) = dtw_top_q_with_candidates(&profiles, band, q, &candidates);
        let dense = dense_top_q(&profiles, band, n);
        for (i, dense_row) in dense.iter().enumerate() {
            let got: Vec<(u32, u32)> = sparse.row(i).map(|(j, d)| (j, d.to_bits())).collect();
            let want: Vec<(u32, u32)> = dense_row
                .iter()
                .filter(|&&(j, _)| (i + j as usize).is_multiple_of(stride))
                .take(q)
                .map(|&(j, d)| (j, d.to_bits()))
                .collect();
            prop_assert_eq!(got, want, "restricted row {} diverged", i);
        }
    }
}

#[test]
fn degenerate_inputs() {
    // No nodes, one node, q = 0: every shape stays consistent and empty.
    let (empty, _) = dtw_top_q(&[], 4, 3);
    assert_eq!(empty.len(), 0);
    let one = vec![vec![1.0f32, 2.0, 3.0]];
    let (single, _) = dtw_top_q(&one, 4, 3);
    assert_eq!(single.len(), 1);
    assert_eq!(single.row(0).count(), 0);
    let two = vec![vec![1.0f32; 4], vec![2.0f32; 4]];
    let (zero_q, _) = dtw_top_q(&two, 2, 0);
    assert_eq!(zero_q.row(0).count(), 0);
    assert_eq!(zero_q.row(1).count(), 0);
}
