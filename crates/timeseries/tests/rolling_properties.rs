//! Property-based checks for the online rolling-DTW layer: incremental
//! maintenance must be *indistinguishable* from batch recomputation, or the
//! online adjacency would silently drift away from the paper's `A_dtw`.
//!
//! Three contracts:
//!
//! 1. A [`DtwFrontier`] grown through any monotone sequence of appends
//!    reports bitwise the same distance as a from-scratch `dtw_banded` at
//!    every intermediate length pair.
//! 2. After any interleaving of insert / remove / append / refresh,
//!    [`RollingNeighbors`] rows are bitwise equal to `dtw_top_q` run from
//!    scratch over the alive series.
//! 3. Envelopes are monotone under appends — on the surviving prefix the
//!    upper envelope never decreases and the lower never increases (windows
//!    only gain elements) — and the incremental extension is bitwise equal
//!    to a full rebuild.

use proptest::prelude::*;
use stsm_timeseries::{
    dtw_banded, dtw_envelope, dtw_envelope_extend, dtw_top_q, DtwFrontier, RollingNeighbors,
};

const FULL_LEN: usize = 40;
const START_LEN: usize = 16;
const STEP: usize = 6;

fn env_bits(e: &stsm_timeseries::DtwEnvelope) -> (Vec<u32>, Vec<u32>) {
    (e.lower.iter().map(|v| v.to_bits()).collect(), e.upper.iter().map(|v| v.to_bits()).collect())
}

type FrontierCase = (Vec<f32>, Vec<f32>, usize, Vec<(usize, usize)>);

fn frontier_case() -> impl Strategy<Value = FrontierCase> {
    (8usize..40, 8usize..40, 0usize..7).prop_flat_map(|(la, lb, band)| {
        (
            proptest::collection::vec(-20f32..20.0, la),
            proptest::collection::vec(-20f32..20.0, lb),
            Just(band),
            proptest::collection::vec((0usize..6, 0usize..6), 1..5),
        )
    })
}

type RollingCase = (Vec<Vec<f32>>, usize, usize, Vec<(u8, usize)>);

fn rolling_case() -> impl Strategy<Value = RollingCase> {
    (1usize..6, 1usize..4).prop_flat_map(|(band, q)| {
        (
            proptest::collection::vec(proptest::collection::vec(-10f32..10.0, FULL_LEN), 10),
            Just(band),
            Just(q),
            proptest::collection::vec((0u8..4, 0usize..16), 1..10),
        )
    })
}

type EnvelopeCase = (Vec<f32>, usize, usize);

fn envelope_case() -> impl Strategy<Value = EnvelopeCase> {
    (10usize..50, 0usize..12).prop_flat_map(|(len, band)| {
        (proptest::collection::vec(-20f32..20.0, len), Just(band), 2usize..9)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frontier_append_sequence_bitwise_equals_batch(case in frontier_case()) {
        let (a, b, band, steps) = case;
        let (mut na, mut nb) = (a.len().min(5), b.len().min(5));
        let mut f = DtwFrontier::new(&a[..na], &b[..nb], band);
        prop_assert_eq!(f.dist().to_bits(), dtw_banded(&a[..na], &b[..nb], band).to_bits());
        for (da, db) in steps {
            na = (na + da).min(a.len());
            nb = (nb + db).min(b.len());
            let d = f.append(&a[..na], &b[..nb]);
            let want = dtw_banded(&a[..na], &b[..nb], band);
            prop_assert_eq!(d.to_bits(), want.to_bits(), "grown to ({}, {})", na, nb);
        }
    }

    #[test]
    fn rolling_rows_equal_from_scratch_after_any_mutation_sequence(case in rolling_case()) {
        let (series, band, q, ops) = case;
        // Start with 4 sensors at the prefix length; 6 more can join later.
        let mut rn = RollingNeighbors::new(band, q);
        let mut lens: Vec<usize> = Vec::new();
        let mut alive: Vec<usize> = Vec::new();
        let mut next = 0usize;
        for _ in 0..4 {
            let id = rn.insert(series[next][..START_LEN].to_vec());
            prop_assert_eq!(id, next);
            lens.push(START_LEN);
            alive.push(id);
            next += 1;
        }
        rn.refresh();

        for (op, pick) in ops {
            match op {
                0 => {
                    // Insert the next unused sensor, if any remain.
                    if next < series.len() {
                        let id = rn.insert(series[next][..START_LEN].to_vec());
                        prop_assert_eq!(id, next);
                        lens.push(START_LEN);
                        alive.push(id);
                        next += 1;
                    }
                }
                1 => {
                    // Remove one alive sensor (keep at least one).
                    if alive.len() > 1 {
                        let id = alive[pick % alive.len()];
                        rn.remove(id);
                        alive.retain(|&x| x != id);
                    }
                }
                2 => {
                    // Append a window to one alive sensor.
                    let id = alive[pick % alive.len()];
                    if lens[id] + STEP <= FULL_LEN {
                        rn.append(id, &series[id][lens[id]..lens[id] + STEP]);
                        lens[id] += STEP;
                    }
                }
                _ => {
                    // The streaming case: every alive sensor gains a window.
                    for &id in &alive {
                        if lens[id] + STEP <= FULL_LEN {
                            rn.append(id, &series[id][lens[id]..lens[id] + STEP]);
                            lens[id] += STEP;
                        }
                    }
                }
            }
            rn.refresh();
            let scratch: Vec<Vec<f32>> =
                alive.iter().map(|&id| series[id][..lens[id]].to_vec()).collect();
            let (want, _) = dtw_top_q(&scratch, band, q);
            let (ids, got) = rn.to_sparse();
            prop_assert_eq!(ids, alive.iter().map(|&i| i as u32).collect::<Vec<_>>());
            prop_assert_eq!(got, want, "after op {}", op);
        }
    }

    #[test]
    fn envelope_extend_is_bitwise_and_monotone(case in envelope_case()) {
        let (s, band, cut) = case;
        let cut = cut.min(s.len() - 1);
        let old = dtw_envelope(&s[..cut], band);
        let mut inc = old.clone();
        dtw_envelope_extend(&mut inc, &s, band);
        let rebuilt = dtw_envelope(&s, band);
        prop_assert_eq!(env_bits(&inc), env_bits(&rebuilt));
        // Monotonicity on the surviving prefix: windows only gain samples.
        for i in 0..cut {
            prop_assert!(rebuilt.upper[i] >= old.upper[i], "upper shrank at {}", i);
            prop_assert!(rebuilt.lower[i] <= old.lower[i], "lower grew at {}", i);
        }
    }
}
