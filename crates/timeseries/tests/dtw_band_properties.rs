//! Property-based checks for the Sakoe–Chiba banded DTW (§3.4.1).
//!
//! Two contracts: a band wide enough to cover the whole DP table makes
//! `dtw_banded` exactly the full `dtw` (the band is an optimisation, never
//! an approximation once the radius reaches the series length), and the
//! banded cost is monotonically non-increasing in the radius (a wider band
//! only ever admits more warping paths).

use proptest::prelude::*;
use stsm_timeseries::{dtw, dtw_banded};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn band_covering_the_table_equals_full_dtw(
        a in proptest::collection::vec(-50f32..50.0, 1..32),
        b in proptest::collection::vec(-50f32..50.0, 1..32),
    ) {
        let full = dtw(&a, &b);
        // Any radius >= max(len) leaves no cell outside the band, so the DP
        // fill is identical cell for cell: the results must be bitwise
        // equal, not merely close.
        for band in [a.len().max(b.len()), a.len() + b.len(), usize::MAX - 1] {
            let banded = dtw_banded(&a, &b, band);
            prop_assert_eq!(
                full.to_bits(),
                banded.to_bits(),
                "band {} diverged: full {} vs banded {}",
                band,
                full,
                banded
            );
        }
    }

    #[test]
    fn band_cost_is_monotone_non_increasing_in_radius(
        a in proptest::collection::vec(-50f32..50.0, 1..24),
        b in proptest::collection::vec(-50f32..50.0, 1..24),
    ) {
        // Radius r admits a subset of the paths radius r+1 admits, so the
        // optimal cost can only drop (or stay) as the band widens. Radius 0
        // still clamps to the length difference, so every cost is finite.
        let max_band = a.len().max(b.len());
        let mut prev = f32::INFINITY;
        for band in 0..=max_band {
            let d = dtw_banded(&a, &b, band);
            prop_assert!(d.is_finite(), "band {} produced non-finite cost {}", band, d);
            prop_assert!(
                d <= prev,
                "cost increased when widening the band to {}: {} -> {}",
                band,
                prev,
                d
            );
            prev = d;
        }
        // ... and the widest band has converged to the exact distance.
        prop_assert_eq!(prev.to_bits(), dtw(&a, &b).to_bits());
    }

    #[test]
    fn dtw_is_a_pseudometric_on_equal_series(
        a in proptest::collection::vec(-50f32..50.0, 1..24),
        band in 0usize..8,
    ) {
        // d(a, a) = 0 at any radius: the diagonal is always inside the band.
        prop_assert_eq!(dtw_banded(&a, &a, band), 0.0);
    }
}

#[test]
fn empty_series_edge_cases() {
    assert_eq!(dtw(&[], &[]), 0.0);
    assert_eq!(dtw_banded(&[], &[], 0), 0.0);
    assert_eq!(dtw(&[], &[1.0]), f32::INFINITY);
    assert_eq!(dtw_banded(&[1.0, 2.0], &[], 3), f32::INFINITY);
}

#[test]
fn zero_band_is_the_diagonal_cost() {
    // Equal lengths + radius 0 degenerate to the pointwise L1 distance.
    let a = [1.0f32, 4.0, 2.0];
    let b = [2.0f32, 2.0, 5.0];
    assert_eq!(dtw_banded(&a, &b, 0), 1.0 + 2.0 + 3.0);
}
