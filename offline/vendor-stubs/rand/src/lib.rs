//! Minimal offline stand-in for `rand` 0.10 with the API surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng`/`RngExt` trait split (`random`, `random_range`), and
//! `seq::SliceRandom::shuffle`.
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — deterministic per seed
//! and statistically solid for synthetic-data generation, but NOT the real
//! crate's ChaCha12, so absolute sampled values differ from upstream rand.
//! Everything in the workspace only relies on per-seed determinism, never
//! on a specific stream.

/// Seeding entry point; only `seed_from_u64` is used by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG trait: raw integer generation.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods (`random`, `random_range`) on any [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample of `T` (floats in `[0, 1)`, full range for ints).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Uniform sample in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable by [`RngExt::random`] from a single `u64`.
pub trait Standard {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator; deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extension: only `shuffle` is used by the workspace.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let z: f64 = c.random();
        let w: f64 = StdRng::seed_from_u64(7).random();
        assert_ne!(z, w);
        for _ in 0..100 {
            let v = a.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = a.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
