//! Minimal offline stand-in for `crossbeam`: an MPMC unbounded channel with
//! the `crossbeam::channel` API surface the workspace uses (`unbounded`,
//! cloneable `Sender`/`Receiver`, blocking `recv` with disconnect detection).
//!
//! Backed by a `Mutex<VecDeque>` + `Condvar`; throughput is lower than real
//! crossbeam but semantics (FIFO per queue, any receiver may take any
//! message, `recv` errors once all senders are gone and the queue drains)
//! are the same.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable, usable from any thread.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC), `recv` blocks.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // No `T: Debug` bound, matching real crossbeam.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }
}
