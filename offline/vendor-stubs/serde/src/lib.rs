//! Minimal offline stand-in for `serde`: value-tree serialization.
//!
//! Instead of serde's visitor architecture, `Serialize`/`Deserialize` here
//! convert through a concrete JSON [`Value`] tree. The companion
//! `serde_derive` stub generates real impls of these traits and the
//! `serde_json` stub prints/parses the tree, so derive + JSON round-trips
//! genuinely work offline — only exotic serde features (visitors, borrowed
//! data, non-JSON formats) are absent.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod text;

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Fallback when a struct field is absent: `Option` yields `None`,
    /// everything else reports `missing field` (mirrors serde's
    /// `missing_field` behaviour).
    fn missing() -> Option<Self> {
        None
    }
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// JSON number: preserves integer-ness so `u64`/`i64`/`usize` round-trip
/// exactly; floats are stored as `f64` (exact for every `f32`).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// Order-preserving string-keyed object map.
#[derive(Clone, Debug, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Key-set equality, order-insensitive (matches serde_json's
    /// `BTreeMap`-backed map semantics).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// JSON value tree (re-exported as `serde_json::Value`).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        text::write_value(self, &mut out, None, 0);
        out
    }

    /// Pretty JSON text (2-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        text::write_value(self, &mut out, Some(2), 0);
        out
    }

    /// Parses JSON text.
    pub fn parse(input: &str) -> Result<Value, Error> {
        text::parse(input)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, ix: usize) -> &Value {
        self.as_array().and_then(|a| a.get(ix)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for the std types the workspace derives over.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats serialize to null (see text.rs).
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across hasher seeds.
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by_key(|(k, _)| *k);
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter().map(|(k, x)| Ok((k.clone(), V::from_value(x)?))).collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter().map(|(k, x)| Ok((k.clone(), V::from_value(x)?))).collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )+};
}

ser_de_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));
