//! JSON text layer: recursive-descent parser and compact/pretty printer
//! for [`Value`](crate::Value). Floats print with Rust's shortest
//! round-trippable `{:?}` representation; non-finite floats print as
//! `null` (they cannot be represented in JSON).

use crate::{Error, Map, Number, Value};

pub(crate) fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // `{:?}` is the shortest representation that round-trips.
            let s = format!("{f:?}");
            out.push_str(&s);
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!("unexpected '{}' at byte {}", c as char, self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&code)
                                && self.literal("\\u")
                            {
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error::msg("bad surrogate"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::msg("bad surrogate"))?;
                                self.pos += 4;
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I(i)
            } else {
                Number::F(text.parse::<f64>().map_err(|_| Error::msg("invalid number"))?)
            }
        } else {
            Number::F(text.parse::<f64>().map_err(|_| Error::msg("invalid number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn roundtrip() {
        let src = r#"{"a": [1, -2, 3.5, null, true], "b": {"c": "x\nyé"}, "n": 18446744073709551615}"#;
        let v = Value::parse(src).unwrap();
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(v, back);
        let pretty = Value::parse(&v.render_pretty()).unwrap();
        assert_eq!(v, pretty);
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["n"].as_u64(), Some(u64::MAX));
        assert_eq!(v["b"]["c"].as_str(), Some("x\nyé"));
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1f64, 1.0 / 3.0, f32::MAX as f64, 1e-300, -0.0] {
            let v = Value::Number(crate::Number::F(f));
            let back = Value::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }
}
