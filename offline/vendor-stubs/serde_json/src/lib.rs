//! Minimal offline stand-in for `serde_json`, backed by the value-tree
//! types in the stub `serde` crate: `Value`/`Map`/`Number`/`Error`,
//! `to_string[_pretty]`, `from_str`, `to_value`/`from_value` and a
//! tt-muncher `json!` macro. JSON produced here genuinely parses back.

pub use serde::{Error, Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Compact JSON text for any `Serialize` type.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render())
}

/// Pretty (2-space indented) JSON text for any `Serialize` type.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Converts any `Serialize` type into a [`Value`] tree. Takes its
/// argument by value like the real crate (references work through the
/// blanket `Serialize for &T` impl).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&Value::parse(s)?)
}

/// Reconstructs any `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

/// Build a [`Value`] from JSON-like syntax. Keys must be string literals;
/// values may be `null`, `true`/`false`, nested `{...}`/`[...]`, or any
/// Rust expression whose type implements `Serialize`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // --- array muncher: accumulate tokens of one element until a
    // --- top-level comma, then recurse on the element.
    (@arr $items:ident ($($elem:tt)+)) => {
        $items.push($crate::json_internal!($($elem)+));
    };
    (@arr $items:ident ($($elem:tt)+) , $($rest:tt)*) => {
        $items.push($crate::json_internal!($($elem)+));
        $crate::json_internal!(@arr $items () $($rest)*);
    };
    (@arr $items:ident ()) => {};
    (@arr $items:ident ($($elem:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@arr $items ($($elem)* $next) $($rest)*);
    };

    // --- object muncher: take `"key" :`, then accumulate value tokens
    // --- until a top-level comma.
    (@obj $map:ident) => {};
    (@obj $map:ident $key:literal : $($rest:tt)+) => {
        $crate::json_internal!(@objval $map $key () $($rest)+);
    };
    (@objval $map:ident $key:literal ($($val:tt)+)) => {
        $map.insert(::std::string::String::from($key), $crate::json_internal!($($val)+));
    };
    (@objval $map:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json_internal!($($val)+));
        $crate::json_internal!(@obj $map $($rest)*);
    };
    (@objval $map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval $map $key ($($val)* $next) $($rest)*);
    };

    // --- literals and composite forms.
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items = ::std::vec::Vec::new();
        $crate::json_internal!(@arr items () $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let cases = vec![json!({"a": 1}), json!({"a": 2})];
        let n = 3usize;
        let v = json!({
            "s": "text",
            "num": 1.5,
            "int": n,
            "none": null,
            "flag": true,
            "expr": format!("x{}", n),
            "arr": [1, 2.5, "three", null, {"nested": [n, 4]}],
            "obj": { "inner": { "deep": n * 2 }, "more": false },
            "cases": cases,
        });
        assert_eq!(v["int"].as_u64(), Some(3));
        assert_eq!(v["expr"].as_str(), Some("x3"));
        assert_eq!(v["arr"][4]["nested"][1].as_u64(), Some(4));
        assert_eq!(v["obj"]["inner"]["deep"].as_u64(), Some(6));
        assert_eq!(v["cases"][1]["a"].as_u64(), Some(2));
        let reparsed: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, reparsed);
    }
}
