//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the lock types with their panic-free `lock()`/`read()`/`write()`
//! signatures are provided; poisoning is ignored (a poisoned std lock is
//! recovered into its inner guard), which matches parking_lot's semantics
//! of not propagating poison.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` stand-in over [`std::sync::Mutex`].
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock` stand-in over [`std::sync::RwLock`].
#[derive(Default, Debug)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
