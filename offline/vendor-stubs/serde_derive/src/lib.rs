//! Offline stand-in for `serde_derive`: generates real impls of the stub
//! `serde::Serialize` / `serde::Deserialize` value-tree traits.
//!
//! The input item is parsed directly from the `proc_macro` token stream (no
//! `syn`/`quote`, which aren't available offline), covering the shapes this
//! workspace actually derives: plain structs (named, tuple, unit) and enums
//! with unit / tuple / struct variants — no generics. Supported field
//! attributes: `#[serde(default)]` and `#[serde(skip)]` (plus
//! container-level `#[serde(default)]`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive stub: generated Serialize does not parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive stub: generated Deserialize does not parse")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    container_default: bool,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tts: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { tts: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tts.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tts.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected identifier, got {other:?}"),
        }
    }

    /// Consumes leading attributes; returns (has_serde_default, has_serde_skip).
    fn eat_attrs(&mut self) -> (bool, bool) {
        let (mut default, mut skip) = (false, false);
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.eat_ident("serde") {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            let mut ac = Cursor::new(args.stream());
                            while let Some(tt) = ac.next() {
                                if let TokenTree::Ident(id) = tt {
                                    match id.to_string().as_str() {
                                        "default" => default = true,
                                        "skip" => skip = true,
                                        other => panic!(
                                            "serde_derive stub: unsupported serde attribute `{other}`"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                other => panic!("serde_derive stub: malformed attribute, got {other:?}"),
            }
        }
        (default, skip)
    }

    fn eat_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes one type, tracking angle-bracket depth so commas inside
    /// generic arguments don't terminate early. Stops before a top-level
    /// `,` or `=` or end of stream.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(tt) = self.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' | '=' if depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (default, skip) = c.eat_attrs();
        c.eat_vis();
        let name = c.expect_ident();
        assert!(c.eat_punct(':'), "serde_derive stub: expected ':' after field `{name}`");
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, default, skip });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_vis();
        c.skip_type();
        c.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        let name = c.expect_ident();
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        assert!(
            !matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '='),
            "serde_derive stub: explicit discriminants unsupported"
        );
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let (container_default, _) = c.eat_attrs();
    c.eat_vis();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive stub: expected `struct` or `enum`");
    };
    let name = c.expect_ident();
    assert!(
        !matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<'),
        "serde_derive stub: generic types are unsupported (deriving `{name}`)"
    );
    let body = if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        }
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive stub: expected struct body, got {other:?}"),
        }
    };
    Item { name, container_default, body }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut m = serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{0}\"), \
                     serde::Serialize::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("serde::Value::Object(m)");
            s
        }
        Body::TupleStruct(1) => String::from("serde::Serialize::to_value(&self.0)"),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => String::from("serde::Value::Null"),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            String::from("serde::Serialize::to_value(x0)")
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut m = serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), {inner});\n\
                             serde::Value::Object(m)\n}}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().filter(|f| !f.skip).map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut fm = serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{0}\"), \
                                 serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        let pattern = if binds.is_empty() {
                            String::from("..")
                        } else {
                            format!("{}, ..", binds.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pattern} }} => {{\n{inner}\
                             let mut m = serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), \
                             serde::Value::Object(fm));\n\
                             serde::Value::Object(m)\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_expr(container_default: bool, f: &Field, obj: &str, ctx: &str) -> String {
    if f.skip {
        return String::from("::std::default::Default::default()");
    }
    let missing = if f.default || container_default {
        String::from("::std::default::Default::default()")
    } else {
        format!(
            "match serde::Deserialize::missing() {{\n\
             Some(d) => d,\n\
             None => return Err(serde::Error::msg(\"missing field `{0}` in {ctx}\")),\n}}",
            f.name
        )
    };
    format!(
        "match serde::Map::get({obj}, \"{0}\") {{\n\
         Some(x) => serde::Deserialize::from_value(x)?,\n\
         None => {missing},\n}}",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{}: {},\n",
                    f.name,
                    field_expr(item.container_default, f, "obj", name)
                ));
            }
            format!(
                "let obj = match v {{\n\
                 serde::Value::Object(m) => m,\n\
                 _ => return Err(serde::Error::msg(\"expected object for {name}\")),\n}};\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Body::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(\
                         a.get({i}).unwrap_or(&serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let a = match v {{\n\
                 serde::Value::Array(a) => a,\n\
                 _ => return Err(serde::Error::msg(\"expected array for {name}\")),\n}};\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("Ok({name})"),
        Body::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => str_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "Ok({name}::{v}(serde::Deserialize::from_value(inner)?))",
                                v = v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "serde::Deserialize::from_value(\
                                         a.get({i}).unwrap_or(&serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let a = match inner {{\n\
                                 serde::Value::Array(a) => a,\n\
                                 _ => return Err(serde::Error::msg(\
                                 \"expected array for {name}::{v}\")),\n}};\n\
                                 Ok({name}::{v}({items})) }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        obj_arms.push_str(&format!(
                            "if let Some(inner) = serde::Map::get(m, \"{v}\") {{\n\
                             return {build};\n}}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                field_expr(false, f, "fm", &format!("{name}::{}", v.name))
                            ));
                        }
                        obj_arms.push_str(&format!(
                            "if let Some(inner) = serde::Map::get(m, \"{v}\") {{\n\
                             let fm = match inner {{\n\
                             serde::Value::Object(fm) => fm,\n\
                             _ => return Err(serde::Error::msg(\
                             \"expected object for {name}::{v}\")),\n}};\n\
                             return Ok({name}::{v} {{\n{inits}}});\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n{str_arms}\
                 other => Err(serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 serde::Value::Object(m) => {{\n{obj_arms}\
                 Err(serde::Error::msg(\"unknown variant object for {name}\"))\n}},\n\
                 _ => Err(serde::Error::msg(\"expected variant for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
