//! Minimal offline stand-in for `criterion` 0.5: enough API for the
//! workspace's bench targets to compile and run. Each benchmark body is
//! executed a handful of times and a single mean wall-clock is printed —
//! no statistics, no HTML reports. Use the real crate for serious numbers;
//! this exists so `cargo bench` / `cargo test --benches` work offline.

use std::fmt::Display;
use std::time::Instant;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = t0.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { iters: 5, elapsed_ns: 0 };
    f(&mut b);
    let per_iter_us = b.elapsed_ns as f64 / b.iters as f64 / 1e3;
    println!("{label:<48} {per_iter_us:>12.2} us/iter  (stub criterion, {} iters)", b.iters);
}

/// Re-export so `use std::hint::black_box` and `criterion::black_box` both
/// work at call sites.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
