//! Minimal offline stand-in for `proptest`: a deterministic random-input
//! test runner with the strategy surface this workspace uses — numeric
//! ranges, tuples, `collection::vec`, `Just`, `prop_map`, `prop_flat_map`
//! and the `proptest!`/`prop_assert*` macros. No shrinking and no
//! persistence (`.proptest-regressions` files are ignored); each case
//! draws from a SplitMix64 stream seeded by the case index, so failures
//! reproduce exactly across runs.

use std::fmt;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEECE66D }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Failure raised by `prop_assert*` or returned from a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }

    pub fn reject(reason: impl fmt::Display) -> Self {
        TestCaseError(format!("rejected: {reason}"))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError(s.to_string())
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size argument of [`vec`]: an exact length or a range of lengths.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: a Vec of samples from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                // Hash the test name into the seed so different tests in
                // one file explore different streams.
                let mut seed = case.wrapping_mul(0x9E3779B97F4A7C15);
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
                }
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n  inputs: {}",
                        config.cases,
                        stringify!($($arg in $strat),+),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
