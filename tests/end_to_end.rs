//! End-to-end integration tests spanning all workspace crates:
//! synthesize → split → train → forecast → score.

use stsm::baselines::{run_gegan, run_ignnk, run_increase, BaselineConfig};
use stsm::core::{
    evaluate_stsm, historical_average_metrics, train_stsm, DistanceMode, ProblemInstance,
    StsmConfig, Variant,
};
use stsm::synth::{ring_split, space_split, DatasetConfig, NetworkKind, SignalKind, SplitAxis};

fn tiny_dataset(seed: u64) -> stsm::synth::Dataset {
    DatasetConfig {
        name: "itest".into(),
        network: NetworkKind::Highway,
        sensors: 30,
        extent: 12_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 8,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 4_000.0,
        poi_radius: 300.0,
        seed,
    }
    .generate()
}

fn tiny_cfg() -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 8,
        windows_per_epoch: 16,
        batch_windows: 4,
        top_k: 10,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_beats_naive_baseline() {
    let dataset = tiny_dataset(101);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let (trained, report) = train_stsm(&problem, &tiny_cfg()).expect("trains");
    assert!(
        report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
        "training loss must decrease"
    );
    let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
    let naive = historical_average_metrics(&problem);
    assert!(
        eval.metrics.rmse < naive.rmse * 1.35,
        "STSM rmse {} should be competitive with naive {}",
        eval.metrics.rmse,
        naive.rmse
    );
}

#[test]
fn every_variant_runs_end_to_end() {
    let dataset = tiny_dataset(102);
    let split = space_split(&dataset.coords, SplitAxis::Horizontal, false);
    for v in Variant::all() {
        let cfg = tiny_cfg().with_variant(v);
        let problem = ProblemInstance::new(
            dataset.clone(),
            split.clone(),
            match v {
                Variant::StsmRdA => DistanceMode::RoadAll,
                Variant::StsmRdM => DistanceMode::RoadMatricesOnly,
                _ => DistanceMode::Euclidean,
            },
        );
        let (trained, _) = train_stsm(&problem, &cfg).expect("trains");
        let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
        assert!(
            eval.metrics.rmse.is_finite() && eval.metrics.rmse > 0.0,
            "{} produced invalid metrics",
            v.name()
        );
    }
}

#[test]
fn all_baselines_run_end_to_end() {
    let dataset = tiny_dataset(103);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let cfg = BaselineConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        epochs: 2,
        windows_per_epoch: 6,
        k_neighbors: 3,
        ..Default::default()
    };
    for report in
        [run_gegan(&problem, &cfg), run_ignnk(&problem, &cfg), run_increase(&problem, &cfg)]
    {
        assert!(report.metrics.rmse.is_finite(), "{} metrics invalid", report.name);
        assert!(report.metrics.mae <= report.metrics.rmse + 1e-9);
        assert!(report.train_seconds > 0.0 && report.test_seconds > 0.0);
    }
}

#[test]
fn ring_split_pipeline_works() {
    let dataset = tiny_dataset(104);
    let split = ring_split(&dataset.coords);
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let (trained, _) = train_stsm(&problem, &tiny_cfg()).expect("trains");
    let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
    assert!(eval.metrics.rmse.is_finite());
}

#[test]
fn air_quality_pipeline_works() {
    let dataset = DatasetConfig {
        name: "itest-airq".into(),
        network: NetworkKind::TwoCities,
        sensors: 24,
        extent: 60_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 8,
        kind: SignalKind::Pm25,
        latent_scale: 15_000.0,
        poi_radius: 500.0,
        seed: 105,
    }
    .generate();
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
    let (trained, _) = train_stsm(&problem, &tiny_cfg()).expect("trains");
    let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
    assert!(eval.metrics.rmse.is_finite() && eval.metrics.rmse > 0.0);
    // PM2.5 predictions should be in a physically plausible band on average.
    assert!(eval.metrics.mae < 200.0, "PM2.5 MAE implausible: {}", eval.metrics.mae);
}

#[test]
fn determinism_across_full_pipeline() {
    let run = || {
        let dataset = tiny_dataset(106);
        let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
        let problem = ProblemInstance::new(dataset, split, DistanceMode::Euclidean);
        let (trained, report) = train_stsm(&problem, &tiny_cfg()).expect("trains");
        let eval = evaluate_stsm(&trained, &problem).expect("evaluates");
        (report.epoch_losses, eval.metrics.rmse)
    };
    let (l1, r1) = run();
    let (l2, r2) = run();
    assert_eq!(l1, l2, "training must be deterministic under a fixed seed");
    assert_eq!(r1, r2, "evaluation must be deterministic under a fixed seed");
}
