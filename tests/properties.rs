//! Cross-crate property-based tests: invariants of the data pipeline that
//! must hold for arbitrary inputs.

use proptest::prelude::*;
use stsm::core::{blend_series, cosine, inverse_distance_weights};
use stsm::graph::{
    distance_sigma, gaussian_threshold_adjacency, normalize_gcn, pairwise_euclidean,
};
use stsm::synth::{multi_region_split, ring_split, space_split_ratio, SplitAxis};
use stsm::timeseries::{dtw_banded, Metrics, Scaler};

fn coord_strategy(n: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    proptest::collection::vec((-1e5f64..1e5, -1e5f64..1e5).prop_map(|(x, y)| [x, y]), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn splits_partition_for_arbitrary_coords(coords in coord_strategy(40), ratio in 0.2f64..0.5) {
        for split in [
            space_split_ratio(&coords, SplitAxis::Horizontal, false, ratio),
            space_split_ratio(&coords, SplitAxis::Vertical, true, ratio),
            ring_split(&coords),
            multi_region_split(&coords, SplitAxis::Horizontal, 2, ratio),
        ] {
            split.validate(coords.len());
            prop_assert!(!split.train.is_empty());
            prop_assert!(!split.test.is_empty());
        }
    }

    #[test]
    fn pseudo_observations_are_convex_blends(
        dists in proptest::collection::vec(0.1f32..1e4, 6),
        values in proptest::collection::vec(-50f32..50.0, 6),
    ) {
        // Weights sum to one, so the blend stays inside the source range.
        let w = inverse_distance_weights(&dists, 1, 6);
        let sum: f32 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        let blended = blend_series(&w, &values, 6, 1)[0];
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(blended >= lo - 1e-3 && blended <= hi + 1e-3,
            "blend {blended} outside [{lo}, {hi}]");
    }

    #[test]
    fn scaler_roundtrips_arbitrary_data(values in proptest::collection::vec(-1e4f32..1e4, 2..200)) {
        let s = Scaler::fit(&values);
        for &v in &values {
            let rt = s.inverse(s.transform(v));
            prop_assert!((rt - v).abs() <= v.abs().max(1.0) * 1e-3);
        }
    }

    #[test]
    fn dtw_is_symmetric_and_bounded(
        a in proptest::collection::vec(-10f32..10.0, 4..24),
        b in proptest::collection::vec(-10f32..10.0, 4..24),
    ) {
        let d_ab = dtw_banded(&a, &b, usize::MAX);
        let d_ba = dtw_banded(&b, &a, usize::MAX);
        prop_assert!((d_ab - d_ba).abs() < 1e-3, "asymmetric: {d_ab} vs {d_ba}");
        prop_assert!(d_ab >= 0.0);
        prop_assert!((dtw_banded(&a, &a, usize::MAX)).abs() < 1e-6);
        // Equal lengths: the diagonal path bounds DTW by the L1 distance.
        if a.len() == b.len() {
            let l1: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            prop_assert!(d_ab <= l1 + 1e-3);
        }
    }

    #[test]
    fn adjacency_construction_invariants(coords in coord_strategy(24), eps in 0.05f32..0.9) {
        let d = pairwise_euclidean(&coords);
        let sigma = distance_sigma(&d, coords.len());
        prop_assert!(sigma > 0.0);
        let a = gaussian_threshold_adjacency(&d, coords.len(), eps);
        // Symmetric, no self loops.
        for (r, c, v) in a.iter() {
            prop_assert!(r != c);
            prop_assert!(v == 1.0);
            prop_assert!(a.get(c, r) == 1.0);
        }
        // Normalization keeps everything finite and adds self loops.
        let norm = normalize_gcn(&a);
        for i in 0..coords.len() {
            prop_assert!(norm.get(i, i) > 0.0);
        }
        for (_, _, v) in norm.iter() {
            prop_assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn metrics_scale_equivariance(
        truth in proptest::collection::vec(1f32..100.0, 8..64),
        noise in proptest::collection::vec(-5f32..5.0, 8..64),
        scale in 0.5f32..4.0,
    ) {
        let n = truth.len().min(noise.len());
        let pred: Vec<f32> = truth[..n].iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
        let m1 = Metrics::compute(&pred, &truth[..n]);
        // Scaling both by the same factor scales RMSE/MAE, keeps MAPE and R².
        let spred: Vec<f32> = pred.iter().map(|v| v * scale).collect();
        let struth: Vec<f32> = truth[..n].iter().map(|v| v * scale).collect();
        let m2 = Metrics::compute(&spred, &struth);
        prop_assert!((m2.rmse - m1.rmse * scale as f64).abs() < 1e-2 * m1.rmse.max(1.0));
        prop_assert!((m2.mape - m1.mape).abs() < 1e-4);
        if m1.r2.is_finite() {
            prop_assert!((m2.r2 - m1.r2).abs() < 1e-3);
        }
    }

    #[test]
    fn cosine_similarity_bounded(
        a in proptest::collection::vec(-10f32..10.0, 5),
        b in proptest::collection::vec(-10f32..10.0, 5),
    ) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&c));
        prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-4 || a.iter().all(|&x| x == 0.0));
    }
}
