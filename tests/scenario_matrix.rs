//! Scenario-matrix suite (ISSUE 10): seeded {region growth, sensor churn,
//! regime shift} × {STSM with online fine-tuning, historical-average
//! baseline} smoke runs over a streamed test period.
//!
//! Contracts:
//! * every accuracy-over-time curve is finite at every window;
//! * curves are run-to-run bit-deterministic (same seed → same bits);
//! * after the churn onset, RMSE recovers within `K` windows (back to no
//!   worse than the worst error seen up to and including the onset).

use stsm::core::{
    train_stsm, DistanceMode, OnlineConfig, OnlineTrainer, Predictor, ProblemInstance, StsmConfig,
};
use stsm::synth::{space_split, ScenarioKind, ScenarioPlan, SplitAxis};
use stsm::timeseries::{sliding_windows, Metrics};

const SEED: u64 = 77;
/// Post-onset windows within which churn RMSE must recover.
const K: usize = 3;

fn tiny_cfg(seed: u64) -> StsmConfig {
    StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        gcn_depth: 2,
        epochs: 2,
        windows_per_epoch: 8,
        batch_windows: 4,
        top_k: 8,
        seed,
        ..Default::default()
    }
}

/// The scenario fixture: a clean problem, the disturbed copy actually
/// streamed, and the plan that scripted the disturbance.
struct Scenario {
    clean: ProblemInstance,
    disturbed: ProblemInstance,
    plan: ScenarioPlan,
}

fn scenario(kind: ScenarioKind, seed: u64) -> Scenario {
    let dataset = stsm::synth::test_support::tiny_dataset("scenario", seed);
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    let clean = ProblemInstance::new(dataset.clone(), split.clone(), DistanceMode::Euclidean);
    let plan = ScenarioPlan::new(kind, seed, dataset.n, dataset.t_total, clean.test_time.clone());
    let mut streamed = dataset;
    for s in 0..streamed.n {
        for t in clean.test_time.clone() {
            let v = streamed.values[s * streamed.t_total + t];
            streamed.values[s * streamed.t_total + t] = plan.reading(s, t, v);
        }
    }
    let disturbed = ProblemInstance::new(streamed, split, DistanceMode::Euclidean);
    Scenario { clean, disturbed, plan }
}

/// Per-window RMSE of STSM forecasts over the disturbed stream, scored
/// against the *clean* ground truth. The model fine-tunes online every
/// `refresh_every` windows on the sliding horizon ending at the stream
/// position, then the forecaster is rebuilt from the refreshed weights.
fn stsm_curve(sc: &Scenario, seed: u64) -> Vec<f64> {
    let cfg = tiny_cfg(seed);
    let (trained, _) = train_stsm(&sc.disturbed, &cfg).expect("trains");
    let online_cfg = OnlineConfig { replay_windows: 24, lr_scale: 0.25, refresh_every: 2 };
    let mut online =
        OnlineTrainer::from_trained(&sc.disturbed, &trained, online_cfg).expect("wraps");
    let span = sc.disturbed.test_time.len();
    let windows = sliding_windows(span, cfg.t_in, cfg.t_out, cfg.t_out);
    assert!(windows.len() >= 4, "test period too short for a curve");
    let mut current = online.trained().expect("snapshot");
    let mut curve = Vec::with_capacity(windows.len());
    for (wi, w) in windows.iter().enumerate() {
        let abs_start = sc.disturbed.test_time.start + w.input_start;
        let mut predictor = Predictor::new(&current, &sc.disturbed);
        let (pred, _quality) = predictor.predict_window_checked(&sc.disturbed, abs_start);
        let target_start = abs_start + cfg.t_in;
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for &u in &sc.disturbed.unobserved {
            for p in 0..cfg.t_out {
                preds.push(sc.disturbed.scaler.inverse(pred.at(&[u, p, 0])));
                truths.push(sc.clean.dataset.value(u, target_start + p));
            }
        }
        curve.push(Metrics::compute(&preds, &truths).rmse);
        // Adapt on the horizon seen so far, then hot-refresh the weights.
        if (wi + 1) % online.online_config().refresh_every == 0 {
            let now = target_start + cfg.t_out;
            let _ = online.fine_tune_epoch(&sc.disturbed, now).expect("fine-tunes");
            current = online.trained().expect("refreshed snapshot");
        }
    }
    curve
}

/// Per-window RMSE of the historical-average baseline (time-of-day mean of
/// the clean training period's observed sensors) against clean truth.
fn baseline_curve(sc: &Scenario, cfg: &StsmConfig) -> Vec<f64> {
    let p = &sc.disturbed;
    let spd = p.steps_per_day();
    let mut tod_sum = vec![0.0f64; spd];
    let mut tod_cnt = vec![0usize; spd];
    for &g in &p.observed {
        for t in p.train_time.clone() {
            let v = p.dataset.value(g, t);
            if v.is_finite() {
                tod_sum[t % spd] += v as f64;
                tod_cnt[t % spd] += 1;
            }
        }
    }
    let tod_mean: Vec<f32> = tod_sum
        .iter()
        .zip(&tod_cnt)
        .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
        .collect();
    let windows = sliding_windows(p.test_time.len(), cfg.t_in, cfg.t_out, cfg.t_out);
    windows
        .iter()
        .map(|w| {
            let target_start = p.test_time.start + w.input_start + cfg.t_in;
            let mut preds = Vec::new();
            let mut truths = Vec::new();
            for &u in &p.unobserved {
                for k in 0..cfg.t_out {
                    preds.push(tod_mean[(target_start + k) % spd]);
                    truths.push(sc.clean.dataset.value(u, target_start + k));
                }
            }
            Metrics::compute(&preds, &truths).rmse
        })
        .collect()
}

fn bits(curve: &[f64]) -> Vec<u64> {
    curve.iter().map(|v| v.to_bits()).collect()
}

/// Index of the first curve window whose input-or-target span reaches the
/// earliest scenario change point.
fn onset_window(sc: &Scenario, cfg: &StsmConfig, curve_len: usize) -> Option<usize> {
    let first = *sc.plan.change_points().first()?;
    let start = sc.disturbed.test_time.start;
    (0..curve_len).find(|wi| start + wi * cfg.t_out + cfg.t_in + cfg.t_out > first)
}

#[test]
fn matrix_curves_are_finite_and_deterministic() {
    for kind in ScenarioKind::ALL {
        let sc = scenario(kind, SEED);
        let cfg = tiny_cfg(SEED);
        let stsm_a = stsm_curve(&sc, SEED);
        let base_a = baseline_curve(&sc, &cfg);
        assert!(
            stsm_a.iter().all(|v| v.is_finite()),
            "{}: STSM curve has non-finite RMSE: {stsm_a:?}",
            kind.name()
        );
        assert!(
            base_a.iter().all(|v| v.is_finite()),
            "{}: baseline curve has non-finite RMSE: {base_a:?}",
            kind.name()
        );
        assert_eq!(stsm_a.len(), base_a.len());

        // Run-to-run bit-determinism: rebuild everything from the seed.
        let sc2 = scenario(kind, SEED);
        let stsm_b = stsm_curve(&sc2, SEED);
        let base_b = baseline_curve(&sc2, &cfg);
        assert_eq!(bits(&stsm_a), bits(&stsm_b), "{}: STSM curve not reproducible", kind.name());
        assert_eq!(
            bits(&base_a),
            bits(&base_b),
            "{}: baseline curve not reproducible",
            kind.name()
        );

        // A different seed scripts a different disturbance somewhere.
        let sc3 = scenario(kind, SEED + 1);
        assert!(
            sc3.plan.change_points() != sc.plan.change_points()
                || bits(&baseline_curve(&sc3, &cfg)) != bits(&base_a),
            "{}: seed must matter",
            kind.name()
        );
    }
}

#[test]
fn churn_rmse_recovers_within_k_windows() {
    let sc = scenario(ScenarioKind::SensorChurn, SEED);
    let cfg = tiny_cfg(SEED);
    let curve = stsm_curve(&sc, SEED);
    let onset = onset_window(&sc, &cfg, curve.len()).expect("churn scripts an onset");
    assert!(onset < curve.len(), "onset must land inside the streamed period");
    // Error ceiling established up to and including the disturbance onset.
    let ceiling = curve[..=onset].iter().copied().fold(f64::MIN, f64::max);
    let post = &curve[onset + 1..(onset + 1 + K).min(curve.len())];
    assert!(!post.is_empty(), "need at least one post-onset window (curve {curve:?})");
    let best_post = post.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        best_post <= ceiling,
        "post-churn RMSE never recovered within {K} windows: onset {onset}, \
         ceiling {ceiling}, post {post:?}, full curve {curve:?}"
    );
}

#[test]
fn growth_sensors_join_the_stream_alive_masks_track_it() {
    let sc = scenario(ScenarioKind::RegionGrowth, SEED);
    let t0 = sc.disturbed.test_time.start;
    let t1 = sc.disturbed.test_time.end - 1;
    let before = sc.plan.alive_mask(t0);
    let after = sc.plan.alive_mask(t1);
    let grown = before.iter().zip(&after).filter(|(b, a)| !**b && **a).count();
    assert!(grown > 0, "growth scenario must bring at least one sensor online");
    // The streamed dataset reflects it: a joining sensor is NaN before its
    // join step and (mostly) finite after.
    let e = &sc.plan.events()[0];
    let s = e.sensor;
    assert!(sc.disturbed.dataset.value(s, e.joins_at.saturating_sub(1).max(t0)).is_nan());
    let alive_steps = (e.joins_at..sc.disturbed.test_time.end)
        .filter(|&t| sc.disturbed.dataset.value(s, t).is_finite())
        .count();
    assert!(alive_steps > 0, "joined sensor must report finite readings");
}
