//! Integration tests for model persistence and the tensor/parameter
//! serialization stack.

use stsm::core::{
    evaluate_stsm, train_stsm, DistanceMode, ProblemInstance, StsmConfig, TrainedStsm,
};
use stsm::synth::{space_split, DatasetConfig, NetworkKind, SignalKind, SplitAxis};
use stsm::tensor::{ParamStore, Tensor};

fn tiny_problem() -> ProblemInstance {
    let dataset = DatasetConfig {
        name: "persist".into(),
        network: NetworkKind::Highway,
        sensors: 20,
        extent: 8_000.0,
        steps_per_day: 24,
        interval_minutes: 60,
        days: 6,
        kind: SignalKind::TrafficSpeed,
        latent_scale: 3_000.0,
        poi_radius: 300.0,
        seed: 201,
    }
    .generate();
    let split = space_split(&dataset.coords, SplitAxis::Vertical, false);
    ProblemInstance::new(dataset, split, DistanceMode::Euclidean)
}

#[test]
fn param_store_roundtrip_through_json() {
    let mut store = ParamStore::new();
    store.register("a", Tensor::from_vec([2, 3], vec![1., -2., 3.5, 0., 1e-7, -9.25]));
    store.register("b", Tensor::scalar(0.5));
    let json = store.to_json();
    let restored = ParamStore::from_json(&json).expect("roundtrip");
    assert_eq!(restored.len(), 2);
    assert_eq!(restored.get(stsm::tensor::ParamId(0)).data()[5], -9.25);
    assert_eq!(restored.name(stsm::tensor::ParamId(1)), "b");
}

#[test]
fn trained_model_roundtrip_preserves_forecasts() {
    let problem = tiny_problem();
    let cfg = StsmConfig {
        t_in: 6,
        t_out: 6,
        hidden: 8,
        blocks: 1,
        epochs: 3,
        windows_per_epoch: 8,
        top_k: 8,
        ..Default::default()
    };
    let (trained, _) = train_stsm(&problem, &cfg).expect("trains");
    let before = evaluate_stsm(&trained, &problem).expect("evaluates");
    let json = trained.to_json();
    let restored = TrainedStsm::from_json(&json).expect("valid JSON");
    let after = evaluate_stsm(&restored, &problem).expect("evaluates");
    assert_eq!(before.metrics.rmse, after.metrics.rmse);
    assert_eq!(before.metrics.mae, after.metrics.mae);
}

#[test]
fn corrupted_json_is_rejected() {
    assert!(TrainedStsm::from_json("{not json").is_err());
    assert!(TrainedStsm::from_json("{}").is_err());
}
