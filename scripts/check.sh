#!/usr/bin/env bash
# Local gate: build, tests, and lints. Run from anywhere in the repo.
#
#   scripts/check.sh              full gate (everything below)
#   CHECK_FAST=1 scripts/check.sh equivalence tier only: the named bitwise /
#                                 equivalence suites, skipping the full
#                                 workspace test run, bench smokes and lints
set -euo pipefail
cd "$(dirname "$0")/.."

fast="${CHECK_FAST:-0}"

if [[ "$fast" != "1" ]]; then
  cargo fmt --check
  cargo build --release
  cargo test -q
fi
# The STSM_BUFFER_POOL bit-identity contract, exercised explicitly so a
# plain `cargo test -q` filter can never silently skip it.
cargo test -q -p stsm-tensor --test fused_equivalence
cargo test -q -p stsm-core --test pool_equivalence
# The Train/Infer execution-mode bit-identity contract (DESIGN.md,
# "Execution modes"), likewise pinned by name.
cargo test -q -p stsm-tensor --test infer_equivalence
cargo test -q -p stsm-core --test infer_equivalence
# Fault-tolerance contracts (DESIGN.md, "Fault tolerance"): kill-and-resume
# bit-identity, checkpoint rejection, guard survival under injected faults,
# degraded-input sanitization — pinned by name.
cargo test -q -p stsm-synth --test fault_injection
cargo test -q -p stsm-core --test resilience
# The STSM_TELEMETRY zero-overhead contract (DESIGN.md, "Telemetry"):
# telemetry on/off bit-identity at the kernel level and over a full
# train + evaluate, plus guard-counter agreement with TrainReport.
cargo test -q -p stsm-tensor --test telemetry_overhead
cargo test -q -p stsm-core --test telemetry_equivalence
# Closed-form metric values, banded-DTW exactness/monotonicity, and the
# baseline trainers' learn-and-determinism smoke tests.
cargo test -q -p stsm-timeseries --test metrics_closed_form
cargo test -q -p stsm-timeseries --test dtw_band_properties
# The pruned sparse top-q contract (DESIGN.md, "Scaling"): LB_Kim/LB_Keogh
# admissibility against the banded kernel, and bitwise top-q equality with
# the dense all-pairs ranking at ~200 nodes — pinned by name.
cargo test -q -p stsm-timeseries --test dtw_prune_properties
cargo test -q -p stsm-baselines --test baseline_training
# The blocked-SIMD kernel contract (DESIGN.md, "Kernel architecture"):
# packed-vs-naive tolerance on odd shapes, bitwise thread-count and
# run-to-run determinism, view-route equality — at every SIMD level the
# host supports (the suite forces Scalar internally; STSM_SIMD=off is the
# process-wide switch). Pinned by name, plus a bench-binary wiring smoke.
cargo test -q -p stsm-tensor --test kernel_tiling_equivalence
# The precision/quantization contract (DESIGN.md, "Precision &
# quantization"): exhaustive f16/bf16 round-trip + RNE rounding +
# scalar-vs-F16C bitwise equivalence, and quantize→save→load→predict
# bitwise stability with the RMSE accuracy ε-gate — pinned by name.
cargo test -q -p stsm-tensor --test dtype_convert
cargo test -q -p stsm-core --test quantized_equivalence
# The serving contracts (DESIGN.md, "Serving"): every request terminates in
# a forecast or a typed rejection under injected chaos (NaN bursts,
# blackouts, worker panics, overload, hot-swap under load), post-chaos
# bitwise recovery, telemetry-gate invisibility, quantized<->f32 hot-swap
# compatibility, fingerprint-mismatch rejection, and the online-refresh
# hot-swap — pinned by name.
# `cargo clippy --all-targets` below covers the stsm-serve crate too.
cargo test -q -p stsm-serve --test serve_chaos
cargo test -q -p stsm-serve --test serve_equivalence
# The online-adaptation contracts (DESIGN.md, "Online adaptation"): rolling
# DTW frontier/row bitwise identity with the batch search under grown
# series and churn, churn-renormalized pseudo-weights vs a fresh survivor
# fit, one fine-tune epoch vs the batch-resumed epoch, and the scenario
# matrix ({growth, churn, regime shift} × {STSM, baseline}) with finite,
# bit-deterministic accuracy curves and post-churn recovery — pinned by
# name.
cargo test -q -p stsm-timeseries --test rolling_properties
cargo test -q -p stsm-core --test online_equivalence
cargo test -q --test scenario_matrix

if [[ "$fast" == "1" ]]; then
  echo "CHECK_FAST=1: equivalence tier green (full build/test, bench smokes and lints skipped)"
  exit 0
fi

cargo run -q -p stsm-bench --release --bin bench_kernels -- --smoke
# Bench-binary wiring smokes: train/infer assert their pool-on/off and
# Train/Infer bitwise contracts in-process (bench_infer includes the
# per-dtype f32/f16/bf16 serving pass with its f32-row bitwise assert);
# scale asserts pruned-vs-dense top-q identity on a small metro layout;
# online asserts rolling-vs-refit row identity after every appended window.
# Smoke runs never rewrite the BENCH_*.json artefacts.
cargo run -q -p stsm-bench --release --features alloc-stats --bin bench_train -- --smoke
cargo run -q -p stsm-bench --release --features alloc-stats --bin bench_infer -- --smoke
cargo run -q -p stsm-bench --release --bin bench_scale -- --smoke
# Serving load-generator wiring: telemetry on/off forecast bits asserted
# identical in-process; smoke never rewrites BENCH_serve.json.
cargo run -q -p stsm-bench --release --bin bench_serve -- --smoke
cargo run -q -p stsm-bench --release --bin bench_online -- --smoke
cargo clippy --all-targets -q -- -D warnings
