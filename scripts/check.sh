#!/usr/bin/env bash
# Full local gate: build, tests, and lints. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
