#!/usr/bin/env bash
# Runs any cargo subcommand with crates-io redirected to the offline
# dependency stand-ins in offline/vendor-stubs (see its README.md).
# Usage: scripts/offline_build.sh <cargo-args...>, e.g.
#   scripts/offline_build.sh build --release
#   scripts/offline_build.sh test -q -p stsm-timeseries
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

exec cargo --offline \
  --config 'source.crates-io.replace-with="offline-stubs"' \
  --config "source.offline-stubs.directory=\"${repo_root}/offline/vendor-stubs\"" \
  "$@"
