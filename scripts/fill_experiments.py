#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders with the measured tables from an
`all_experiments` (+ `ablation`) log.

Usage: python3 scripts/fill_experiments.py <log-file> [EXPERIMENTS.md]
"""
import re
import sys


def extract_sections(log: str) -> dict:
    """Splits the log on the '==== running NAME ====' banners."""
    parts = re.split(r"=+ running (\w+) \(STSM_SCALE=\w+\) =+", log)
    sections = {}
    # parts = [prefix, name1, body1, name2, body2, ...]
    for i in range(1, len(parts) - 1, 2):
        sections[parts[i]] = parts[i + 1].strip()
    # The ablation run is appended without a banner; find its heading.
    m = re.search(r"# Ablations beyond the paper.*", log, re.S)
    if m:
        sections["ablation"] = m.group(0).strip()
    return sections


def clean(body: str) -> str:
    """Drops save notices and the leading title line, keeps tables."""
    lines = []
    for line in body.splitlines():
        if line.startswith("[saved ") or line.startswith("# "):
            continue
        lines.append(line)
    return "\n".join(lines).strip()


PLACEHOLDERS = {
    "<!-- TABLE4 -->": "table4",
    "<!-- TABLE5 -->": "table5",
    "<!-- FIG8 -->": "fig8",
    "<!-- TABLE6 -->": "table6",
    "<!-- TABLE7 -->": "table7",
    "<!-- TABLE8 -->": "table8",
    "<!-- FIG9 -->": "fig9",
    "<!-- FIG10 -->": "fig10",
    "<!-- TABLE9 -->": "table9",
    "<!-- TABLE10 -->": "table10",
    "<!-- TABLE11 -->": "table11",
    "<!-- FIG7 -->": "fig7",
    "<!-- FIGMAPS -->": "figmaps",
    "<!-- ABLATION -->": "ablation",
}


def main() -> None:
    log_path = sys.argv[1]
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    with open(log_path) as f:
        sections = extract_sections(f.read())
    with open(md_path) as f:
        md = f.read()
    for placeholder, name in PLACEHOLDERS.items():
        if placeholder in md and name in sections:
            md = md.replace(placeholder, clean(sections[name]))
        elif placeholder in md:
            md = md.replace(placeholder, f"*(section `{name}` missing from log)*")
    with open(md_path, "w") as f:
        f.write(md)
    print(f"filled {md_path} from {log_path} ({len(sections)} sections)")


if __name__ == "__main__":
    main()
